package obs

import (
	"bufio"
	"io"
	"sort"
	"strings"
)

// Fleet metrics aggregation (DESIGN.md §16): the coordinator collects one
// RegistryDump per node and renders them as a single Prometheus text
// exposition in which every sample carries a `node` label naming the
// process it came from. Histogram families additionally get a synthetic
// `node="fleet"` series — the bucket-wise sum across nodes, legal only
// when every node agrees on the bucket bounds — plus derived
// `<name>_p50` / `<name>_p99` gauge families estimated from the merged
// buckets, so one scrape answers fleet-wide latency questions.

// NodeDump is one node's metrics snapshot tagged with the node's name
// (the value of its `node` label in the merged exposition).
type NodeDump struct {
	Node string       `json:"node"`
	Dump RegistryDump `json:"dump"`
}

// FleetNodeLabel tags the synthetic cross-node aggregate series in a
// merged exposition. Real node names must not collide with it.
const FleetNodeLabel = "fleet"

// fleetSeries is one node's contribution to a family.
type fleetSeries struct {
	node string
	s    SeriesDump
}

// WriteFleetExposition renders the nodes' dumps as one merged, valid
// Prometheus text exposition. Families are the union across nodes, sorted
// by name, each declared once; the first node to define a family fixes its
// kind and help, and a later node's same-named family of a different kind
// is dropped rather than mixed. Per-node histogram merges that disagree on
// bucket bounds skip the fleet aggregate instead of summing mislabeled
// buckets.
func WriteFleetExposition(w io.Writer, nodes []NodeDump) error {
	type fam struct {
		help   string
		kind   Kind
		series []fleetSeries
	}
	fams := map[string]*fam{}
	var order []string
	for _, n := range nodes {
		for _, fd := range n.Dump.Families {
			f, ok := fams[fd.Name]
			if !ok {
				f = &fam{help: fd.Help, kind: fd.Kind}
				fams[fd.Name] = f
				order = append(order, fd.Name)
			} else if f.kind != fd.Kind {
				continue
			}
			for _, s := range fd.Series {
				f.series = append(f.series, fleetSeries{node: n.Node, s: s})
			}
		}
	}
	sort.Strings(order)

	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := fams[name]
		if err := writeFamilyHeader(bw, name, f.help, f.kind); err != nil {
			return err
		}
		for _, fs := range f.series {
			labels := withNodeLabel(fs.s.Labels, fs.node)
			if f.kind == KindHistogram {
				if fs.s.Hist == nil {
					continue
				}
				if err := writeHistogramDump(bw, name, labels, *fs.s.Hist); err != nil {
					return err
				}
				continue
			}
			if err := writeSample(bw, name, labels, fs.s.Value); err != nil {
				return err
			}
		}
		if f.kind != KindHistogram {
			continue
		}
		merged := mergeFleetHistograms(f.series)
		for _, m := range merged {
			if err := writeHistogramDump(bw, name,
				withNodeLabel(m.labels, FleetNodeLabel), m.h.Dump()); err != nil {
				return err
			}
		}
		// Derived quantile gauges from the merged buckets, one family per
		// quantile so the exposition stays well-typed.
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"_p50", 0.5}, {"_p99", 0.99}} {
			if len(merged) == 0 {
				break
			}
			if err := writeFamilyHeader(bw, name+q.suffix,
				"fleet-merged quantile of "+name, KindGauge); err != nil {
				return err
			}
			for _, m := range merged {
				if err := writeSample(bw, name+q.suffix,
					withNodeLabel(m.labels, FleetNodeLabel), m.h.Quantile(q.q)); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

func writeFamilyHeader(w io.Writer, name, help string, kind Kind) error {
	if help == "" {
		help = name
	}
	_, err := io.WriteString(w, "# HELP "+name+" "+escapeHelp(help)+
		"\n# TYPE "+name+" "+string(kind)+"\n")
	return err
}

// writeHistogramDump renders one dumped histogram series as the
// conventional _bucket/_sum/_count triple.
func writeHistogramDump(w io.Writer, name, labels string, d HistogramDump) error {
	var run uint64
	for i, ub := range d.Upper {
		run += d.Counts[i]
		le := formatFloat(ub)
		if err := writeSample(w, name+"_bucket", joinLabels(labels, `le="`+le+`"`), float64(run)); err != nil {
			return err
		}
	}
	run += d.Inf
	if err := writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(run)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, d.Sum); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, float64(d.Count))
}

// mergedHist is a fleet-merged histogram for one base label set.
type mergedHist struct {
	labels string
	h      *Histogram
}

// mergeFleetHistograms merges each base label set's histograms across
// nodes. Label sets whose nodes disagree on bucket bounds are skipped
// entirely — a mismatched merge must be rejected, not summed.
func mergeFleetHistograms(series []fleetSeries) []mergedHist {
	byLabels := map[string]*mergedHist{}
	bad := map[string]bool{}
	var order []string
	for _, fs := range series {
		if fs.s.Hist == nil || bad[fs.s.Labels] {
			continue
		}
		m, ok := byLabels[fs.s.Labels]
		if !ok {
			h, err := NewHistogramFromDump(*fs.s.Hist)
			if err != nil {
				bad[fs.s.Labels] = true
				continue
			}
			byLabels[fs.s.Labels] = &mergedHist{labels: fs.s.Labels, h: h}
			order = append(order, fs.s.Labels)
			continue
		}
		if err := m.h.AddDump(*fs.s.Hist); err != nil {
			bad[fs.s.Labels] = true
			delete(byLabels, fs.s.Labels)
		}
	}
	out := make([]mergedHist, 0, len(byLabels))
	for _, labels := range order {
		if m, ok := byLabels[labels]; ok {
			out = append(out, *m)
		}
	}
	return out
}

// withNodeLabel splices `node="..."` into a rendered label set, keeping
// the keys sorted so merged series stay canonical.
func withNodeLabel(labels, node string) string {
	pair := `node="` + escapeLabelValue(node) + `"`
	if labels == "" {
		return pair
	}
	var b strings.Builder
	inserted := false
	for i, p := range splitLabelPairs(labels) {
		if !inserted && strings.Compare(labelKey(p), "node") > 0 {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(pair)
			inserted = true
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	if !inserted {
		b.WriteByte(',')
		b.WriteString(pair)
	}
	return b.String()
}

func labelKey(pair string) string {
	if eq := strings.IndexByte(pair, '='); eq >= 0 {
		return pair[:eq]
	}
	return pair
}
