package obs

import (
	"sort"
	"sync"
)

// Flight-sample kinds recorded by the exploration stack. The flight
// recorder is a free-form journal — any kind string is legal — but the
// engine and service agree on these:
const (
	// FlightRound is one per-round convergence sample: Restart and Round
	// locate it, Value is the best schedule length (cycles) seen by that
	// restart at the end of that round, Aux is the candidate ISE count.
	// Round samples are a pure function of the exploration inputs, so
	// the round series is byte-identical across checkpoint/resume.
	FlightRound = "round"
	// FlightCache is an eval-cache snapshot at the end of a restart:
	// Value is the hit rate in [0,1], Aux the total lookups. Cache
	// traffic depends on timing and on what other work warmed the cache,
	// so cache samples sit outside the determinism comparison.
	FlightCache = "cache"
	// FlightDelta snapshots the cumulative delta-scheduling resume
	// counter at the end of a restart (Value); like cache samples it is
	// timing-dependent.
	FlightDelta = "delta"
	// FlightShard is a shard lifecycle event recorded by the cluster
	// coordinator: Restart is the shard index, Round the dispatch
	// attempt, Label one of "claim", "retry", "done", "failed".
	FlightShard = "shard"
)

// FlightSample is one entry of the convergence flight recorder. Samples
// deliberately carry no wall-clock timestamp: the journal records how the
// search converged (merit by round), not when, which is what lets the
// deterministic kinds compare byte-identical across checkpoint/resume and
// re-dispatch. Wall-time questions belong to the tracer.
type FlightSample struct {
	Kind string `json:"kind"`
	// Block locates the sample in a multi-block job. The engine records
	// with the recorder's current block (SetBlock); the cluster
	// coordinator rebases worker samples with MergeRebased.
	Block   int     `json:"block,omitempty"`
	Restart int     `json:"restart,omitempty"`
	Round   int     `json:"round,omitempty"`
	Label   string  `json:"label,omitempty"`
	Value   float64 `json:"value"`
	Aux     float64 `json:"aux,omitempty"`
}

// key is the sample's identity for sorting and deduplication: everything
// except the measured values.
func (s FlightSample) key() FlightSample {
	s.Value, s.Aux = 0, 0
	return s
}

func sampleLess(a, b FlightSample) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Block != b.Block {
		return a.Block < b.Block
	}
	if a.Restart != b.Restart {
		return a.Restart < b.Restart
	}
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	return a.Label < b.Label
}

// Flight is a bounded, observation-only ring journal of how one job's
// search converged. The exploration loop records into it and never reads
// it back (the obspurity lint pass enforces that, like it does for the
// rest of obs); the service serves it as /v1/jobs/{id}/flight and as
// incremental SSE events.
//
// A nil *Flight is the disabled recorder: Record is a plain nil check with
// no allocation and no lock, so the engine's zero-alloc contract holds
// with flight instrumentation compiled in (pinned by
// BenchmarkFlightDisabled and TestExploreSteadyStateAllocs).
//
// When the ring is full the oldest sample is overwritten: a runaway job
// bounds its journal, keeping the most recent window.
type Flight struct {
	mu    sync.Mutex
	buf   []FlightSample     // guarded by mu — ring storage, cap bounded
	start int                // guarded by mu — index of the oldest sample
	sink  func(FlightSample) // guarded by mu — optional live-event tap
	block int                // guarded by mu — Block stamped on Record samples
	max   int
}

// DefaultFlightCap bounds a job's flight journal when the caller does not
// choose: enough for thousands of round samples without letting a
// pathological job grow without bound.
const DefaultFlightCap = 8192

// NewFlight returns an enabled recorder holding at most capacity samples
// (DefaultFlightCap if capacity ≤ 0).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &Flight{max: capacity}
}

// Enabled reports whether samples recorded on f are kept.
func (f *Flight) Enabled() bool { return f != nil }

// SetBlock sets the Block coordinate stamped on subsequently recorded
// samples — the service advances it as a multi-block job moves through
// its blocks. Restored and merged samples keep their own blocks.
func (f *Flight) SetBlock(block int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.block = block
	f.mu.Unlock()
}

// Record appends one sample at the current block. Safe and free on a nil
// recorder.
func (f *Flight) Record(kind string, restart, round int, value, aux float64) {
	if f == nil {
		return
	}
	f.record(FlightSample{Kind: kind, Block: -1, Restart: restart, Round: round, Value: value, Aux: aux})
}

// RecordEvent appends one labeled sample (shard lifecycle events) at the
// current block. Safe and free on a nil recorder.
func (f *Flight) RecordEvent(kind, label string, restart, round int, value float64) {
	if f == nil {
		return
	}
	f.record(FlightSample{Kind: kind, Block: -1, Restart: restart, Round: round, Label: label, Value: value})
}

// record stores s; a Block of -1 means "stamp the current block".
func (f *Flight) record(s FlightSample) {
	f.mu.Lock()
	if s.Block == -1 {
		s.Block = f.block
	}
	if len(f.buf) < f.max {
		f.buf = append(f.buf, s)
	} else {
		f.buf[f.start] = s
		f.start++
		if f.start == f.max {
			f.start = 0
		}
	}
	sink := f.sink
	f.mu.Unlock()
	if sink != nil {
		sink(s)
	}
}

// Len returns the number of buffered samples.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// SetSink installs fn as a live tap called (outside the recorder lock)
// with every subsequently recorded sample — the service's SSE feed. A nil
// fn removes the tap.
func (f *Flight) SetSink(fn func(FlightSample)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.sink = fn
	f.mu.Unlock()
}

// Series returns the journal in canonical form: sorted by (kind, restart,
// round, label) and deduplicated on that identity, keeping the first
// recorded occurrence. Replayed work after a checkpoint resume re-records
// the same deterministic samples, so canonicalization makes the series a
// pure function of how far the search got — byte-identical whether or not
// the run was interrupted.
func (f *Flight) Series() []FlightSample {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]FlightSample, 0, len(f.buf))
	out = append(out, f.buf[f.start:]...)
	out = append(out, f.buf[:f.start]...)
	f.mu.Unlock()
	// Stable sort keeps recording order within one identity, so the
	// dedup below keeps the earliest occurrence.
	sort.SliceStable(out, func(i, j int) bool { return sampleLess(out[i], out[j]) })
	dedup := out[:0]
	for _, s := range out {
		if len(dedup) > 0 && dedup[len(dedup)-1].key() == s.key() {
			continue
		}
		dedup = append(dedup, s)
	}
	return dedup
}

// Restore replaces the journal with samples — the snapshot sidecar a
// resumed job carries. Samples beyond the ring capacity keep the newest.
func (f *Flight) Restore(samples []FlightSample) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(samples) > f.max {
		samples = samples[len(samples)-f.max:]
	}
	f.buf = append(f.buf[:0], samples...)
	f.start = 0
}

// Merge records every sample of series into f, keeping each sample's own
// coordinates. Safe on a nil recorder.
func (f *Flight) Merge(series []FlightSample) {
	if f == nil {
		return
	}
	for _, s := range series {
		f.record(s)
	}
}

// MergeRebased records series with every sample moved to block and its
// restart index shifted by restartOffset — how the coordinator folds a
// worker's shard journal (whose restarts are shard-local, starting at 0)
// into the distributed job's journal at the shard's global position. Safe
// on a nil recorder.
func (f *Flight) MergeRebased(series []FlightSample, block, restartOffset int) {
	if f == nil {
		return
	}
	for _, s := range series {
		s.Block = block
		s.Restart += restartOffset
		f.record(s)
	}
}
