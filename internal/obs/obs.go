// Package obs is the repository's observability layer: a stdlib-only
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// exported in Prometheus text exposition format), a low-overhead tracer
// emitting Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing), and nothing else — no third-party dependencies, no
// background goroutines.
//
// Instrumentation through this package is observation-only by contract:
// engine code may write into obs (increment a counter, open a span) but must
// never read obs state back into a decision — exploration results are
// byte-identical with every metric and trace enabled or disabled. The
// iselint pass `obspurity` machine-checks that rule over the deterministic
// packages (see DESIGN.md §12).
//
// The package-global Default registry collects the engine-level metrics
// (schedule-evaluation cache, scheduling kernel, worker pool); process
// front ends (cmd/iseserve) merge it with their own registries when serving
// /metrics.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind is a metric family's type, matching the Prometheus TYPE keywords.
type Kind string

// Metric family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Default is the process-wide registry used by the engine packages
// (internal/core, internal/sched, internal/parallel, internal/flow) for
// their always-on counters. Servers merge it into their own exposition; see
// (*Registry).WritePrometheus.
var Default = NewRegistry()

// Registry is a set of named metric families, each holding one series per
// distinct label set. Registration is get-or-create: asking twice for the
// same (name, labels) returns the same metric, so package-level metric
// variables in independently initialized packages cannot collide. A name
// re-registered with a different kind or help string panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family // guarded by mu
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series // guarded by mu — key is the rendered label set
	order  []string           // guarded by mu — label keys in first-seen order
}

// series is one (family, label set) time series.
type series struct {
	labels string // rendered `k="v",...` form, "" for unlabeled
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var nameRe = func() func(string) bool {
	// Prometheus metric and label names: [a-zA-Z_:][a-zA-Z0-9_:]*.
	return func(s string) bool {
		if s == "" {
			return false
		}
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				return false
			}
		}
		return true
	}
}()

// renderLabels turns alternating key/value pairs into the canonical
// `k1="v1",k2="v2"` form, keys sorted, values escaped.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !nameRe(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// getFamily resolves (or creates) the family for name, checking metadata
// consistency.
func (r *Registry) getFamily(name, help string, kind Kind, buckets []float64) *family {
	if !nameRe(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name:    name,
			help:    help,
			kind:    kind,
			buckets: append([]float64(nil), buckets...),
			//lint:ignore lockguard the family is still private to its constructor; it is published under r.mu
			series: make(map[string]*series),
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// getSeries resolves (or creates, via mk) the series for one label set.
func (f *family) getSeries(labels []string, mk func(rendered string) *series) *series {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk(key)
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers (or finds) a monotonically increasing counter. labels
// are alternating key/value pairs; the same (name, labels) always returns
// the same *Counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.getFamily(name, help, KindCounter, nil)
	s := f.getSeries(labels, func(key string) *series {
		return &series{labels: key, c: &Counter{}}
	})
	return s.c
}

// Gauge registers (or finds) a gauge — a value that can go up and down.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.getFamily(name, help, KindGauge, nil)
	s := f.getSeries(labels, func(key string) *series {
		return &series{labels: key, g: &Gauge{}}
	})
	return s.g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// exposition time. Re-registering the same (name, labels) replaces the
// callback — the latest owner wins, so a rebuilt component (a restarted
// manager in tests) does not serve stale closures.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	f := r.getFamily(name, help, KindGauge, nil)
	s := f.getSeries(labels, func(key string) *series {
		return &series{labels: key}
	})
	f.mu.Lock()
	s.gf = fn
	f.mu.Unlock()
}

// Histogram registers (or finds) a histogram with the given ascending
// finite bucket upper bounds (a +Inf bucket is implicit). A nil buckets
// slice uses DefBuckets. Re-registering with different buckets keeps the
// first registration's buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.getFamily(name, help, KindHistogram, buckets)
	s := f.getSeries(labels, func(key string) *series {
		return &series{labels: key, h: NewHistogram(f.buckets)}
	})
	return s.h
}

// families returns the registry's families sorted by name — the stable
// exposition order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// seriesView is a point-in-time copy of one series' handles, taken under
// the family lock so exposition can read values (and call gauge funcs)
// without holding any registry lock.
type seriesView struct {
	labels string
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// snapshotSeries returns a family's series in first-registration order.
func (f *family) snapshotSeries() []seriesView {
	f.mu.Lock()
	out := make([]seriesView, 0, len(f.order))
	for _, key := range f.order {
		s := f.series[key]
		out = append(out, seriesView{labels: s.labels, c: s.c, g: s.g, gf: s.gf, h: s.h})
	}
	f.mu.Unlock()
	return out
}
