package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile into path and returns the function
// that stops profiling and closes the file. Call the stop function before
// the process exits — os.Exit does not run deferred calls, so commands that
// exit explicitly must stop explicitly.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile runs a GC (so the profile reflects live objects, not
// garbage awaiting collection) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}
