package obs

// Structured registry dumps: the machine-readable form of /metrics that
// fleet nodes exchange. Scraping the text exposition and re-parsing it
// would lose bucket structure and invite float round-tripping; a dump
// carries the exact counts, so the coordinator can merge histograms and
// re-render one fleet-wide exposition (see WriteFleetExposition).

// SeriesDump is one (family, label set) series' value. Histogram series
// carry their full bucket state in Hist and leave Value 0.
type SeriesDump struct {
	Labels string         `json:"labels,omitempty"` // rendered `k="v",...` form
	Value  float64        `json:"value"`
	Hist   *HistogramDump `json:"hist,omitempty"`
}

// FamilyDump is one metric family with every series' current value.
type FamilyDump struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Kind   Kind         `json:"kind"`
	Series []SeriesDump `json:"series,omitempty"`
}

// RegistryDump is a point-in-time snapshot of a registry, families sorted
// by name.
type RegistryDump struct {
	Families []FamilyDump `json:"families,omitempty"`
}

// Dump snapshots every family of the registry. Gauge funcs are sampled
// during the dump.
func (r *Registry) Dump() RegistryDump {
	var out RegistryDump
	for _, f := range r.families() {
		fd := FamilyDump{Name: f.name, Help: f.help, Kind: f.kind}
		for _, s := range f.snapshotSeries() {
			sd := SeriesDump{Labels: s.labels}
			switch {
			case s.c != nil:
				sd.Value = s.c.Value()
			case s.gf != nil:
				sd.Value = s.gf()
			case s.g != nil:
				sd.Value = s.g.Value()
			case s.h != nil:
				h := s.h.Dump()
				sd.Hist = &h
			}
			fd.Series = append(fd.Series, sd)
		}
		out.Families = append(out.Families, fd)
	}
	return out
}

// MergeDumps concatenates dumps into one, preserving family order across
// the inputs. It is how a node folds its process-local registries (the
// service registry plus the engine's Default) into one wire snapshot; the
// registries hold disjoint family names by construction.
func MergeDumps(dumps ...RegistryDump) RegistryDump {
	var out RegistryDump
	for _, d := range dumps {
		out.Families = append(out.Families, d.Families...)
	}
	return out
}
