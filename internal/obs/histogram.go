package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default histogram buckets, tuned for latencies in
// seconds from sub-millisecond scheduling calls to multi-minute exploration
// jobs.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds, ascending; a +Inf bucket is implicit. Observation is lock-free
// (one atomic add per bucket hit plus a CAS on the sum); reading while
// observing yields a consistent-enough view for monitoring — count, sum and
// buckets are each exact, but are not sampled at one instant.
type Histogram struct {
	upper  []float64 // finite bucket upper bounds, ascending; immutable
	counts []atomic.Uint64
	inf    atomic.Uint64 // observations above the last finite bound
	sum    atomic.Uint64 // float64 bits
	n      atomic.Uint64
}

// NewHistogram builds a histogram over the given finite upper bounds. The
// bounds are sorted and deduplicated; nil uses DefBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	dedup := up[:0]
	for i, b := range up {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{upper: dedup, counts: make([]atomic.Uint64, len(dedup))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bucket whose upper bound covers v.
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	addFloat(&h.sum, v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sum.Load())
}

// HistogramDump is a histogram's state in wire form: non-cumulative
// per-bucket counts plus the implicit +Inf bucket, the sum and the total.
// It is what /metrics?format=dump ships between fleet nodes and what
// fleet aggregation merges.
type HistogramDump struct {
	Upper  []float64 `json:"upper,omitempty"` // finite bounds, ascending
	Counts []uint64  `json:"counts,omitempty"`
	Inf    uint64    `json:"inf,omitempty"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Dump snapshots the histogram. Buckets, sum and count are each exact but
// not sampled at one instant (same consistency as scraping).
func (h *Histogram) Dump() HistogramDump {
	d := HistogramDump{
		Upper:  append([]float64(nil), h.upper...),
		Counts: make([]uint64, len(h.counts)),
		Inf:    h.inf.Load(),
		Sum:    h.Sum(),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		d.Counts[i] = h.counts[i].Load()
	}
	return d
}

// boundsEqual reports whether the dump's bucket bounds match h's exactly.
func (h *Histogram) boundsEqual(d HistogramDump) bool {
	if len(d.Upper) != len(h.upper) || len(d.Counts) != len(h.upper) {
		return false
	}
	for i, b := range h.upper {
		if d.Upper[i] != b {
			return false
		}
	}
	return true
}

// AddDump folds a dumped histogram into h. The bucket bounds must match
// exactly: summing buckets with different bounds would silently mislabel
// observations, so a mismatch is rejected with an error and h is left
// untouched.
func (h *Histogram) AddDump(d HistogramDump) error {
	if !h.boundsEqual(d) {
		return fmt.Errorf("obs: histogram merge with mismatched bounds %v vs %v", d.Upper, h.upper)
	}
	for i, c := range d.Counts {
		h.counts[i].Add(c)
	}
	h.inf.Add(d.Inf)
	addFloat(&h.sum, d.Sum)
	h.n.Add(d.Count)
	return nil
}

// Merge folds o's observations into h. Bounds must match exactly; on
// mismatch h is unchanged and an error is returned.
func (h *Histogram) Merge(o *Histogram) error {
	return h.AddDump(o.Dump())
}

// NewHistogramFromDump reconstructs a histogram from its dump, the
// receiving half of fleet aggregation.
func NewHistogramFromDump(d HistogramDump) (*Histogram, error) {
	h := NewHistogram(d.Upper)
	if len(d.Upper) == 0 {
		// NewHistogram(nil) substitutes DefBuckets; an explicitly empty
		// dump means "no finite buckets".
		h = &Histogram{}
	}
	if err := h.AddDump(d); err != nil {
		return nil, err
	}
	return h, nil
}

// cumulative returns the per-bucket cumulative counts (including +Inf last)
// and the total.
func (h *Histogram) cumulative() ([]uint64, uint64) {
	out := make([]uint64, len(h.upper)+1)
	var run uint64
	for i := range h.upper {
		run += h.counts[i].Load()
		out[i] = run
	}
	run += h.inf.Load()
	out[len(h.upper)] = run
	return out, run
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the target bucket — the same estimate
// Prometheus's histogram_quantile computes server-side. q is clamped to
// [0, 1] and the result to the observed bucket range, so every sample count
// (including 0, 1 and 2 observations — the cases the old service quantile
// mis-indexed) yields a well-defined value: an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	cum, total := h.cumulative()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation, clamped into
	// [1, total].
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	// Find the first bucket whose cumulative count reaches the rank.
	b := sort.Search(len(cum), func(i int) bool { return cum[i] >= rank })
	if b == len(h.upper) {
		// +Inf bucket: report the largest finite bound (or the sum when
		// there are no finite buckets at all).
		if len(h.upper) == 0 {
			return h.Sum()
		}
		return h.upper[len(h.upper)-1]
	}
	lo := 0.0
	if b > 0 {
		lo = h.upper[b-1]
	}
	hi := h.upper[b]
	prev := uint64(0)
	if b > 0 {
		prev = cum[b-1]
	}
	inBucket := cum[b] - prev
	if inBucket == 0 {
		return hi
	}
	frac := float64(rank-prev) / float64(inBucket)
	return lo + (hi-lo)*frac
}
