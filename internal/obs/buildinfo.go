package obs

import "runtime/debug"

// RegisterBuildInfo registers the conventional `ise_build_info` gauge on
// r: constant value 1 with the build identity in labels (module version,
// VCS revision when stamped, Go toolchain), so a fleet scrape can tell
// which build every node runs. Call it once from each command's main.
func RegisterBuildInfo(r *Registry) {
	version, commit, goVersion := buildIdentity(debug.ReadBuildInfo())
	r.Gauge("ise_build_info",
		"build identity of this process; constant 1",
		"version", version, "commit", commit, "go", goVersion).Set(1)
}

// buildIdentity extracts (version, commit, go) from build info, tolerating
// the nil info of non-module test binaries.
func buildIdentity(bi *debug.BuildInfo, ok bool) (version, commit, goVersion string) {
	version, commit, goVersion = "unknown", "unknown", "unknown"
	if !ok || bi == nil {
		return
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			commit = s.Value
			if len(commit) > 12 {
				commit = commit[:12]
			}
		}
	}
	return
}
