package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace parses a WriteJSON document back into events.
func decodeTrace(t *testing.T, tr *Tracer) []TraceEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON: %v\n%s", err, buf.String())
	}
	return out.TraceEvents
}

// TestTracerImportRebase drives Import with a synthetic export whose clock
// runs 1 s ahead, and checks the events land on the importer's timeline at
// the instants they actually happened.
func TestTracerImportRebase(t *testing.T) {
	coord := NewTracer()
	base := coord.start.UnixMicro()

	// The worker's epoch is local instant +2000 µs, but its own clock
	// reads 1 s ahead of ours.
	const skew = int64(1_000_000)
	exp := TraceExport{
		StartUnixMicros: base + 2000 + skew,
		Events: []TraceEvent{
			{Name: "restart", Ph: "X", Ts: 100, Dur: 500, TID: 1},
			{Name: "mark", Ph: "i", Ts: 300, TID: 1},
		},
		Tracks: map[int]string{1: "restart 0"},
	}
	// offset param is importer − exporter = −skew; no clamp window.
	coord.Import(exp, -skew, 3, "worker w1", 0, 0)

	evs := decodeTrace(t, coord)
	var span, mark *TraceEvent
	for i := range evs {
		switch evs[i].Name {
		case "restart":
			span = &evs[i]
		case "mark":
			mark = &evs[i]
		}
	}
	if span == nil || mark == nil {
		t.Fatalf("imported events missing: %+v", evs)
	}
	if span.Ts != 2100 || span.Dur != 500 || span.PID != 3 || span.TID != 1 {
		t.Fatalf("span = %+v, want ts 2100 dur 500 pid 3 tid 1", span)
	}
	if mark.Ts != 2300 {
		t.Fatalf("instant ts = %d, want 2300", mark.Ts)
	}
	// Process and track metadata for the imported pid.
	var gotProc, gotTrack bool
	for _, e := range evs {
		if e.Ph != "M" {
			continue
		}
		if e.Name == "process_name" && e.PID == 3 && e.Args["name"] == "worker w1" {
			gotProc = true
		}
		if e.Name == "thread_name" && e.PID == 3 && e.TID == 1 && e.Args["name"] == "restart 0" {
			gotTrack = true
		}
	}
	if !gotProc || !gotTrack {
		t.Fatalf("imported metadata missing (proc %v track %v): %+v", gotProc, gotTrack, evs)
	}
}

// TestTracerImportClamp pins the nesting guarantee: offset-estimation
// error cannot push imported spans outside the dispatch window they are
// clamped into.
func TestTracerImportClamp(t *testing.T) {
	coord := NewTracer()
	base := coord.start.UnixMicro()
	lo, hi := base+1000, base+2000
	exp := TraceExport{
		StartUnixMicros: base,
		Events: []TraceEvent{
			{Name: "early", Ph: "X", Ts: 500, Dur: 800, TID: 1},   // starts before lo
			{Name: "late", Ph: "X", Ts: 1800, Dur: 900, TID: 1},   // overruns hi
			{Name: "beyond", Ph: "X", Ts: 2500, Dur: 100, TID: 1}, // entirely after hi
			{Name: "inside", Ph: "i", Ts: 1500, TID: 1},
		},
	}
	coord.Import(exp, 0, 2, "w", lo, hi)
	for _, e := range decodeTrace(t, coord) {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < 1000 || e.Ts > 2000 || e.Ts+e.Dur > 2000 {
			t.Errorf("event %q [%d, %d] escapes clamp window [1000, 2000]", e.Name, e.Ts, e.Ts+e.Dur)
		}
		switch e.Name {
		case "early":
			if e.Ts != 1000 || e.Dur != 300 {
				t.Errorf("early = [%d, dur %d], want [1000, dur 300]", e.Ts, e.Dur)
			}
		case "late":
			if e.Ts != 1800 || e.Dur != 200 {
				t.Errorf("late = [%d, dur %d], want [1800, dur 200]", e.Ts, e.Dur)
			}
		case "beyond":
			if e.Ts != 2000 || e.Dur != 0 {
				t.Errorf("beyond = [%d, dur %d], want [2000, dur 0]", e.Ts, e.Dur)
			}
		}
	}
}

func TestTracerExportRoundTrip(t *testing.T) {
	w := NewTracer()
	w.NameTrack(1, "restart 4")
	w.Begin("round", 1).Arg("round", 1).End()
	exp := w.Export()
	if len(exp.Events) != 1 || exp.Tracks[1] != "restart 4" {
		t.Fatalf("export = %+v", exp)
	}
	if exp.StartUnixMicros == 0 {
		t.Fatalf("export carries no epoch")
	}
	// Wire round trip: the export must survive JSON encoding.
	raw, err := json.Marshal(exp)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceExport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.StartUnixMicros != exp.StartUnixMicros || len(back.Events) != 1 || back.Tracks[1] != "restart 4" {
		t.Fatalf("wire round trip = %+v, want %+v", back, exp)
	}
	var nilT *Tracer
	if e := nilT.Export(); len(e.Events) != 0 {
		t.Fatalf("nil export = %+v", e)
	}
	nilT.Import(exp, 0, 1, "w", 0, 0) // must not panic
}

// TestTracerWriteJSONSorted pins the monotone-output rule merged traces
// rely on.
func TestTracerWriteJSONSorted(t *testing.T) {
	tr := NewTracer()
	tr.SetPID(0, "coordinator")
	sp := tr.Begin("outer", 0)
	time.Sleep(2 * time.Millisecond)
	tr.Instant("mid", 0)
	sp.End() // recorded after "mid" but starts before it
	last := int64(-1)
	for _, e := range decodeTrace(t, tr) {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < last {
			t.Fatalf("events not monotone: %d after %d", e.Ts, last)
		}
		last = e.Ts
	}
}
