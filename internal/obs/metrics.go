package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. It stores a float64 (the
// Prometheus counter model) behind a compare-and-swap loop, so integer
// increments up to 2^53 are exact — the concurrency tests assert exact
// totals under 8-way hammering. The zero value is ready to use.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative (counters only go up).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decrement")
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down. The zero value is ready to
// use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative v decrements).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}
