package obs

import (
	"reflect"
	"testing"
)

func TestFlightNilIsFree(t *testing.T) {
	var f *Flight
	if f.Enabled() {
		t.Fatalf("nil flight reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		f.Record(FlightRound, 1, 2, 3, 4)
		f.RecordEvent(FlightShard, "claim", 0, 0, 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled flight recorder allocated %v allocs/op, want 0", allocs)
	}
	if f.Len() != 0 || f.Series() != nil {
		t.Fatalf("nil flight holds samples")
	}
	f.Restore([]FlightSample{{Kind: "x"}})
	f.Merge([]FlightSample{{Kind: "x"}})
	f.SetSink(func(FlightSample) {})
}

func TestFlightRingBound(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightRound, 0, i, float64(i), 0)
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want ring cap 4", f.Len())
	}
	s := f.Series()
	if len(s) != 4 {
		t.Fatalf("Series len = %d, want 4", len(s))
	}
	// The ring keeps the newest window: rounds 6..9.
	for i, smp := range s {
		if smp.Round != 6+i || smp.Value != float64(6+i) {
			t.Fatalf("series[%d] = %+v, want round %d", i, smp, 6+i)
		}
	}
}

// TestFlightSeriesCanonical is the checkpoint/resume identity argument in
// miniature: replayed rounds re-record the same (kind, restart, round)
// samples, and Series must collapse them so an interrupted run reports the
// same series as an uninterrupted one.
func TestFlightSeriesCanonical(t *testing.T) {
	uninterrupted := NewFlight(0)
	for round := 0; round < 5; round++ {
		uninterrupted.Record(FlightRound, 0, round, float64(100-round), 0)
	}

	resumed := NewFlight(0)
	for round := 0; round < 3; round++ {
		resumed.Record(FlightRound, 0, round, float64(100-round), 0)
	}
	// Checkpoint, restore, replay round 2 and continue.
	snap := resumed.Series()
	resumed = NewFlight(0)
	resumed.Restore(snap)
	for round := 2; round < 5; round++ {
		resumed.Record(FlightRound, 0, round, float64(100-round), 0)
	}

	if got, want := resumed.Series(), uninterrupted.Series(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed series %+v, want %+v", got, want)
	}
}

func TestFlightSeriesSortsAcrossRestarts(t *testing.T) {
	f := NewFlight(0)
	f.Record(FlightRound, 1, 0, 7, 0)
	f.Record(FlightRound, 0, 1, 8, 0)
	f.Record(FlightCache, 0, 0, 0.5, 10)
	f.Record(FlightRound, 0, 0, 9, 0)
	got := f.Series()
	want := []FlightSample{
		{Kind: FlightCache, Restart: 0, Round: 0, Value: 0.5, Aux: 10},
		{Kind: FlightRound, Restart: 0, Round: 0, Value: 9},
		{Kind: FlightRound, Restart: 0, Round: 1, Value: 8},
		{Kind: FlightRound, Restart: 1, Round: 0, Value: 7},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Series = %+v, want %+v", got, want)
	}
}

func TestFlightMergeAndEvents(t *testing.T) {
	shard := NewFlight(0)
	shard.Record(FlightRound, 2, 0, 42, 1)
	job := NewFlight(0)
	job.RecordEvent(FlightShard, "claim", 0, 0, 0)
	job.Merge(shard.Series())
	s := job.Series()
	if len(s) != 2 {
		t.Fatalf("merged series = %+v, want 2 samples", s)
	}
	if s[0].Kind != FlightRound || s[1].Label != "claim" {
		t.Fatalf("merged series order = %+v", s)
	}
}

func TestFlightSink(t *testing.T) {
	f := NewFlight(0)
	var got []FlightSample
	f.SetSink(func(s FlightSample) { got = append(got, s) })
	f.Record(FlightRound, 0, 0, 1, 0)
	f.SetSink(nil)
	f.Record(FlightRound, 0, 1, 2, 0)
	if len(got) != 1 || got[0].Round != 0 {
		t.Fatalf("sink saw %+v, want exactly the first sample", got)
	}
}

func TestFlightRestoreClipsToCapacity(t *testing.T) {
	f := NewFlight(2)
	f.Restore([]FlightSample{
		{Kind: FlightRound, Round: 0}, {Kind: FlightRound, Round: 1}, {Kind: FlightRound, Round: 2},
	})
	s := f.Series()
	if len(s) != 2 || s[0].Round != 1 || s[1].Round != 2 {
		t.Fatalf("restore kept %+v, want newest two rounds", s)
	}
}
