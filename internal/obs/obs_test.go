package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestCounterPanicsOnDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("name_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering counter as gauge did not panic")
		}
	}()
	r.Gauge("name_total", "help")
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shards_total", "per shard", "shard", "0")
	b := r.Counter("shards_total", "per shard", "shard", "1")
	if a == b {
		t.Fatalf("distinct label sets shared a counter")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatalf("labels leaked between series")
	}
	// Label order must not matter.
	x := r.Counter("multi_total", "m", "a", "1", "b", "2")
	y := r.Counter("multi_total", "m", "b", "2", "a", "1")
	if x != y {
		t.Fatalf("label order created distinct series")
	}
}

// TestRegistryConcurrency hammers one counter, one labeled counter family,
// one gauge and one histogram from 8 goroutines and asserts exact totals —
// the float64-bits CAS must not lose increments. Run under -race in tier 2.
func TestRegistryConcurrency(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
	)
	r := NewRegistry()
	c := r.Counter("conc_total", "c")
	g := r.Gauge("conc_gauge", "g")
	h := r.Histogram("conc_seconds", "h", []float64{0.5, 1, 2})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lab := r.Counter("conc_shard_total", "per shard", "shard", string(rune('0'+id)))
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				lab.Inc()
				h.Observe(float64(j%4) * 0.5)
			}
		}(i)
	}
	wg.Wait()
	want := float64(goroutines * perG)
	if got := c.Value(); got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if got := g.Value(); got != want {
		t.Errorf("gauge = %v, want %v", got, want)
	}
	if got := h.Count(); got != uint64(want) {
		t.Errorf("histogram count = %d, want %d", got, uint64(want))
	}
	// Observations cycle 0, 0.5, 1, 1.5 → sum is perG/4*(0+0.5+1+1.5) per
	// goroutine.
	wantSum := float64(goroutines) * float64(perG) / 4 * 3.0
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	for i := 0; i < goroutines; i++ {
		lab := r.Counter("conc_shard_total", "per shard", "shard", string(rune('0'+i)))
		if got := lab.Value(); got != perG {
			t.Errorf("shard %d = %v, want %d", i, got, perG)
		}
	}
}

// TestHistogramQuantile is the satellite's table-driven percentile test: the
// old service ring-buffer p99 mis-indexed with fewer than 2 samples; the obs
// histogram must be well-defined at 0, 1, 2 and 513 samples.
func TestHistogramQuantile(t *testing.T) {
	buckets := []float64{0.01, 0.1, 1, 10}
	fill := func(n int) *Histogram {
		h := NewHistogram(buckets)
		for i := 0; i < n; i++ {
			// Spread samples across [0, 1): all land in finite buckets.
			h.Observe(float64(i%100) / 100)
		}
		return h
	}
	cases := []struct {
		name       string
		samples    int
		q          float64
		wantMin    float64
		wantMax    float64
		wantExact  float64
		exactKnown bool
	}{
		{name: "empty p99", samples: 0, q: 0.99, exactKnown: true, wantExact: 0},
		{name: "empty p50", samples: 0, q: 0.50, exactKnown: true, wantExact: 0},
		{name: "one sample p99", samples: 1, q: 0.99, wantMin: 0, wantMax: 0.01},
		{name: "one sample p50", samples: 1, q: 0.50, wantMin: 0, wantMax: 0.01},
		{name: "two samples p99", samples: 2, q: 0.99, wantMin: 0, wantMax: 0.1},
		{name: "two samples p0", samples: 2, q: 0, wantMin: 0, wantMax: 0.01},
		{name: "513 samples p50", samples: 513, q: 0.50, wantMin: 0.1, wantMax: 1},
		{name: "513 samples p99", samples: 513, q: 0.99, wantMin: 0.1, wantMax: 1},
		{name: "513 samples p100", samples: 513, q: 1, wantMin: 0.1, wantMax: 1},
		{name: "clamped q above 1", samples: 513, q: 1.7, wantMin: 0.1, wantMax: 1},
		{name: "clamped q below 0", samples: 513, q: -0.3, wantMin: 0, wantMax: 0.01},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := fill(tc.samples)
			got := h.Quantile(tc.q)
			if tc.exactKnown {
				if got != tc.wantExact {
					t.Fatalf("Quantile(%v) with %d samples = %v, want %v", tc.q, tc.samples, got, tc.wantExact)
				}
				return
			}
			if got < tc.wantMin || got > tc.wantMax {
				t.Fatalf("Quantile(%v) with %d samples = %v, want in [%v, %v]", tc.q, tc.samples, got, tc.wantMin, tc.wantMax)
			}
		})
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 1 {
		t.Fatalf("+Inf-bucket quantile = %v, want largest finite bound 1", got)
	}
	cum, total := h.cumulative()
	if total != 2 || cum[0] != 0 || cum[1] != 2 {
		t.Fatalf("cumulative = %v total %d, want [0 2] total 2", cum, total)
	}
}

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_done_total", "jobs finished").Add(3)
	r.Counter("cache_hits_total", "hits", "shard", "0").Inc()
	r.Counter("cache_hits_total", "hits", "shard", "1").Add(2)
	r.Gauge("queue_depth", "queued jobs").Set(4)
	r.GaugeFunc("live_gauge", "sampled", func() float64 { return 9 })
	h := r.Histogram("latency_seconds", "job latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	wants := []string{
		"# TYPE jobs_done_total counter",
		"jobs_done_total 3",
		`cache_hits_total{shard="0"} 1`,
		`cache_hits_total{shard="1"} 2`,
		"queue_depth 4",
		"live_gauge 9",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_count 3",
	}
	for _, want := range wants {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if err := ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("ValidateExposition rejected our own output: %v\n%s", err, text)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no samples", "# HELP a b\n# TYPE a counter\n"},
		{"sample without type", "orphan_total 3\n"},
		{"bad value", "# TYPE a counter\na notanumber\n"},
		{"bad name", "# TYPE a counter\n2bad 3\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"y\" 3\n"},
		{"unquoted label", "# TYPE a counter\na{x=y} 3\n"},
		{"unknown type", "# TYPE a widget\na 3\n"},
		{"duplicate type", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 3\n"},
		{"suffix on counter", "# TYPE c counter\nc_bucket{le=\"1\"} 3\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateExposition(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("ValidateExposition accepted malformed input:\n%s", tc.in)
			}
		})
	}
	good := "# HELP x_total fine\n# TYPE x_total counter\nx_total{a=\"b,c\",d=\"e\\\"f\"} 12 1700000000\n" +
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 0.5\nh_count 1\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("ValidateExposition rejected valid input: %v", err)
	}
}

func TestTracerRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.SetPID(2, "block demo")
	tr.NameTrack(1, "restart 0")
	sp := tr.Begin("round", 1).Arg("round", 3).Arg("ants", 8)
	tr.Instant("checkpoint", 0)
	sp.End()
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata events (process_name, thread_name) + instant + span.
	if len(out.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4: %s", len(out.TraceEvents), buf.String())
	}
	byName := map[string]int{}
	for i, e := range out.TraceEvents {
		byName[e.Name] = i
	}
	span := out.TraceEvents[byName["round"]]
	if span.Ph != "X" || span.PID != 2 || span.TID != 1 {
		t.Errorf("span event = %+v, want ph X pid 2 tid 1", span)
	}
	if span.Args["round"] != float64(3) || span.Args["ants"] != float64(8) {
		t.Errorf("span args = %v, want round=3 ants=8", span.Args)
	}
	if _, ok := byName["process_name"]; !ok {
		t.Errorf("missing process_name metadata event")
	}
	if _, ok := byName["thread_name"]; !ok {
		t.Errorf("missing thread_name metadata event")
	}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatalf("nil tracer reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("hot", 1).Arg("k", 1)
		tr.Instant("x", 0)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v allocs/op, want 0", allocs)
	}
	if tr.Len() != 0 {
		t.Fatalf("nil tracer Len = %d", tr.Len())
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
}

func TestCounterHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "hot")
	h := r.Histogram("hot_seconds", "hot", []float64{1})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("counter+histogram hot path allocated %v allocs/op, want 0", allocs)
	}
}
