package obs

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RPC headers carrying the distributed-trace context and the server clock
// between cluster nodes (DESIGN.md §16). They live in obs so every use of
// the propagated context stays inside the observability layer: engine code
// moves TraceContext and ClockState values around but never turns them
// into decisions.
const (
	// HeaderTraceID identifies one distributed trace (one distributed
	// job). The coordinator mints it; workers echo it on every RPC of the
	// shards they run for that trace.
	HeaderTraceID = "X-Ise-Trace-Id"
	// HeaderParentSpan names the span the receiving node's work nests
	// under (e.g. the coordinator's dispatch span for a claimed shard).
	HeaderParentSpan = "X-Ise-Parent-Span"
	// HeaderServerTime is the responding server's clock as Unix
	// microseconds, stamped on every cluster RPC response so clients can
	// estimate their clock offset (see ClockSync).
	HeaderServerTime = "X-Ise-Server-Time"
)

// TraceContext is the propagated identity of one distributed trace: which
// trace the work belongs to and which span it nests under. The zero value
// is "no trace".
type TraceContext struct {
	TraceID    string `json:"trace_id,omitempty"`
	ParentSpan string `json:"parent_span,omitempty"`
}

// Valid reports whether the context names a trace.
func (c TraceContext) Valid() bool { return c.TraceID != "" }

// Inject writes the context into RPC headers. A zero context writes
// nothing.
func (c TraceContext) Inject(h http.Header) {
	if c.TraceID != "" {
		h.Set(HeaderTraceID, c.TraceID)
	}
	if c.ParentSpan != "" {
		h.Set(HeaderParentSpan, c.ParentSpan)
	}
}

// TraceContextFromHeader reads a propagated context back out of RPC
// headers; absent headers yield the zero (invalid) context.
func TraceContextFromHeader(h http.Header) TraceContext {
	return TraceContext{
		TraceID:    h.Get(HeaderTraceID),
		ParentSpan: h.Get(HeaderParentSpan),
	}
}

// StampServerTime records the server's clock on an RPC response.
func StampServerTime(h http.Header, now time.Time) {
	h.Set(HeaderServerTime, strconv.FormatInt(now.UnixMicro(), 10))
}

// ClockSync estimates the offset between this node's clock and a server's
// from RPC request/response timing: if a request was sent at local
// microsecond w0, answered with server reading c (HeaderServerTime) and
// received at local w1, then c was read near the local midpoint
// (w0+w1)/2, so offset ≈ (w0+w1)/2 − c and local ≈ server + offset. The
// estimate's error is bounded by half the round trip. ClockSync keeps the
// estimate from the lowest-round-trip exchange seen, the one with the
// tightest bound. A nil *ClockSync ignores samples and reports offset 0.
type ClockSync struct {
	mu      sync.Mutex
	offset  int64 // guarded by mu — local − server, microseconds
	rtt     int64 // guarded by mu — round trip of the kept sample
	samples int   // guarded by mu
}

// Observe feeds one RPC exchange: request sent at local Unix microsecond
// sentUnixMicros, response received at recvUnixMicros, with the server's
// HeaderServerTime in h. Responses without the header are ignored.
func (c *ClockSync) Observe(sentUnixMicros, recvUnixMicros int64, h http.Header) {
	if c == nil {
		return
	}
	raw := h.Get(HeaderServerTime)
	if raw == "" {
		return
	}
	server, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return
	}
	rtt := recvUnixMicros - sentUnixMicros
	if rtt < 0 {
		return
	}
	mid := sentUnixMicros + rtt/2
	c.mu.Lock()
	if c.samples == 0 || rtt <= c.rtt {
		c.offset, c.rtt = mid-server, rtt
	}
	c.samples++
	c.mu.Unlock()
}

// ClockState is a ClockSync's current estimate in wire form: how far this
// node's clock runs ahead of the server's. Workers ship it with shard
// results; the coordinator feeds OffsetMicros straight into
// Tracer.Import (local = worker − offset ⇒ the worker's events move onto
// the coordinator timeline by subtracting it from the worker's epoch,
// which Import expresses as adding the negated value).
type ClockState struct {
	// OffsetMicros is local − server in microseconds: positive means
	// this node's clock runs ahead of the server it synced against.
	OffsetMicros int64 `json:"offset_micros"`
	// Samples counts the RPC exchanges folded into the estimate; 0 means
	// no estimate (treat the offset as unknown, not as exactly 0).
	Samples int `json:"samples,omitempty"`
}

// State returns the current estimate.
func (c *ClockSync) State() ClockState {
	if c == nil {
		return ClockState{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClockState{OffsetMicros: c.offset, Samples: c.samples}
}
