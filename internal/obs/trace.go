package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records duration spans and instant events and exports them as
// Chrome trace-event JSON — the format Perfetto and about://tracing load
// directly. A nil *Tracer is the disabled tracer: every method is a cheap
// nil check and Begin returns the zero Span, so instrumented hot loops pay
// no allocation and no lock when tracing is off (pinned at 0 allocs/op by
// BenchmarkSpanDisabled).
//
// Track layout convention used by this repo: tid 0 carries process-level
// spans (service job phases); tid r+1 carries the spans of restart r, so
// parallel restarts render as parallel tracks. SetPID groups tracks into a
// named process row per exploration block; in a merged fleet trace each
// worker node gets its own pid row (see Import).
type Tracer struct {
	mu     sync.Mutex
	events []TraceEvent // guarded by mu
	start  time.Time
	pid    int               // guarded by mu — pid stamped on new events
	procs  map[int]string    // guarded by mu — pid → process display name
	names  map[[2]int]string // guarded by mu — {pid, tid} → track display name
}

// TraceEvent is one Chrome trace-event object. It is exported so worker
// nodes can ship their buffered spans to the coordinator inside a
// TraceExport (see Export/Import); ordinary instrumentation never touches
// it directly.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since trace start
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns an enabled tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{
		start: time.Now(),
		procs: make(map[int]string),
		names: make(map[[2]int]string),
	}
}

// Enabled reports whether spans recorded on t are kept. It is the
// branch instrumented code may use to skip building expensive span
// arguments; Begin/End on a nil tracer are already safe and free.
func (t *Tracer) Enabled() bool { return t != nil }

// SetPID sets the process id (and display name) stamped on subsequently
// recorded events, grouping tracks per exploration block in the viewer.
func (t *Tracer) SetPID(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pid = pid
	if name != "" {
		t.procs[pid] = name
	}
	t.mu.Unlock()
}

// Span is an open duration span. The zero Span (from a nil tracer) is
// valid: End and Arg are no-ops. Span is a value type holding no pointers
// into the tracer beyond the tracer itself, so opening a span performs no
// allocation.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	begin time.Duration
	a1k   string // up to two inline args, avoiding a map alloc per span
	a1v   int64
	a2k   string
	a2v   int64
}

// Begin opens a span named name on track tid. Close it with End.
func (t *Tracer) Begin(name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, begin: time.Since(t.start)}
}

// Arg attaches an integer argument to the span (shown in the viewer's
// details pane). At most two args are kept per span; later ones are
// dropped. Returns the span for chaining.
func (s Span) Arg(key string, v int64) Span {
	if s.t == nil {
		return s
	}
	switch {
	case s.a1k == "":
		s.a1k, s.a1v = key, v
	case s.a2k == "":
		s.a2k, s.a2v = key, v
	}
	return s
}

// End closes the span and records it.
//
//alloc:amortized records an event only when a tracer is attached; zero-alloc kernels run untraced
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := time.Since(s.t.start)
	var args map[string]any
	if s.a1k != "" {
		args = map[string]any{s.a1k: s.a1v}
		if s.a2k != "" {
			args[s.a2k] = s.a2v
		}
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, TraceEvent{
		Name: s.name,
		Ph:   "X",
		Ts:   s.begin.Microseconds(),
		Dur:  end.Microseconds() - s.begin.Microseconds(),
		PID:  s.t.pid,
		TID:  s.tid,
		Args: args,
	})
	s.t.mu.Unlock()
}

// Instant records a zero-duration instant event on track tid.
func (t *Tracer) Instant(name string, tid int) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Microseconds()
	t.mu.Lock()
	t.events = append(t.events, TraceEvent{
		Name: name, Ph: "i", Ts: ts, PID: t.pid, TID: tid,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// TraceExport is a tracer's buffered state in wire form: the events plus
// the wall-clock instant (in the exporting node's clock) that their
// timestamps are relative to. Workers ship one with each shard result so
// the coordinator can merge every node's spans into a single timeline.
type TraceExport struct {
	// StartUnixMicros is the exporter's trace epoch as Unix microseconds
	// on the exporter's own clock; event Ts values are relative to it.
	StartUnixMicros int64          `json:"start_unix_micros"`
	Events          []TraceEvent   `json:"events,omitempty"`
	Tracks          map[int]string `json:"tracks,omitempty"` // tid → name
}

// Export snapshots the tracer's events for shipping to another node. The
// receiving tracer rebases them onto its own timeline with Import. Export
// flattens pids: it is meant for single-process (worker-side) tracers,
// whose events all carry the local default pid.
func (t *Tracer) Export() TraceExport {
	if t == nil {
		return TraceExport{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	exp := TraceExport{StartUnixMicros: t.start.UnixMicro()}
	exp.Events = append(exp.Events, t.events...)
	if len(t.names) > 0 {
		exp.Tracks = make(map[int]string, len(t.names))
		for k, v := range t.names {
			exp.Tracks[k[1]] = v
		}
	}
	return exp
}

// Import merges an exported trace into t as process row pid (displayed as
// proc), rebasing every timestamp onto t's timeline.
//
// offsetMicros is the estimated clock offset between the exporting node
// and this node (exporter reading + offset = local reading, the value a
// ClockSync accumulates on the exporting side). An event at exporter-
// relative microsecond ts happened at local Unix microsecond
// exp.StartUnixMicros + ts + offsetMicros; subtracting t's own epoch makes
// it t-relative.
//
// Offset estimation carries error on the order of the RPC round trip, so
// rebased spans could land slightly outside the local span that logically
// contains them (the coordinator's dispatch span). loUnixMicros and
// hiUnixMicros — local-clock Unix microseconds — bound the window the
// imported events are known to have happened in; events are clamped into
// it (durations shrink as needed), which keeps imported spans nested under
// the local dispatch span and the merged timeline monotone. A
// non-positive window (hi ≤ lo) disables clamping.
func (t *Tracer) Import(exp TraceExport, offsetMicros int64, pid int, proc string, loUnixMicros, hiUnixMicros int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.start.UnixMicro()
	shift := exp.StartUnixMicros + offsetMicros - base
	lo, hi := loUnixMicros-base, hiUnixMicros-base
	clamp := hi > lo
	for _, ev := range exp.Events {
		ts, dur := ev.Ts+shift, ev.Dur
		if clamp {
			if ts < lo {
				if ev.Ph == "X" {
					dur -= lo - ts
					if dur < 0 {
						dur = 0
					}
				}
				ts = lo
			}
			if ts > hi {
				ts = hi
			}
			if ev.Ph == "X" && ts+dur > hi {
				dur = hi - ts
			}
		}
		ev.Ts, ev.Dur, ev.PID = ts, dur, pid
		t.events = append(t.events, ev)
	}
	if proc != "" {
		t.procs[pid] = proc
	}
	for tid, name := range exp.Tracks {
		t.names[[2]int{pid, tid}] = name
	}
}

// WriteJSON writes the trace as a Chrome trace-event JSON object
// ({"traceEvents": [...]}) ready to load into Perfetto. Events are sorted
// by timestamp so merged multi-node traces read as one monotone timeline.
// Safe to call while spans are still being recorded; it snapshots the
// events under the lock.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var evs []TraceEvent
	var procs []TraceEvent
	if t != nil {
		t.mu.Lock()
		evs = append(evs, t.events...)
		// Metadata events name the processes and threads in the viewer,
		// emitted in sorted key order for stable output.
		pids := make([]int, 0, len(t.procs))
		for pid := range t.procs {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			procs = append(procs, TraceEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": t.procs[pid]},
			})
		}
		keys := make([][2]int, 0, len(t.names))
		for k := range t.names {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			procs = append(procs, TraceEvent{
				Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
				Args: map[string]any{"name": t.names[k]},
			})
		}
		t.mu.Unlock()
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	out := struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}{TraceEvents: append(procs, evs...)}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// NameTrack assigns a display name to track tid (e.g. "restart 3") within
// the current pid row.
func (t *Tracer) NameTrack(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[[2]int{t.pid, tid}] = name
	t.mu.Unlock()
}
