package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Tracer records duration spans and instant events and exports them as
// Chrome trace-event JSON — the format Perfetto and about://tracing load
// directly. A nil *Tracer is the disabled tracer: every method is a cheap
// nil check and Begin returns the zero Span, so instrumented hot loops pay
// no allocation and no lock when tracing is off (pinned at 0 allocs/op by
// BenchmarkSpanDisabled).
//
// Track layout convention used by this repo: tid 0 carries process-level
// spans (service job phases); tid r+1 carries the spans of restart r, so
// parallel restarts render as parallel tracks. SetPID groups tracks into a
// named process row per exploration block.
type Tracer struct {
	mu     sync.Mutex
	events []traceEvent // guarded by mu
	start  time.Time
	pid    int            // guarded by mu
	proc   string         // guarded by mu — process name for pid
	names  map[int]string // guarded by mu — tid display names
}

// traceEvent is one Chrome trace-event object.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since trace start
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns an enabled tracer whose timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), names: make(map[int]string)}
}

// Enabled reports whether spans recorded on t are kept. It is the
// branch instrumented code may use to skip building expensive span
// arguments; Begin/End on a nil tracer are already safe and free.
func (t *Tracer) Enabled() bool { return t != nil }

// SetPID sets the process id (and display name) stamped on subsequently
// recorded events, grouping tracks per exploration block in the viewer.
func (t *Tracer) SetPID(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pid = pid
	t.proc = name
	t.mu.Unlock()
}

// Span is an open duration span. The zero Span (from a nil tracer) is
// valid: End and Arg are no-ops. Span is a value type holding no pointers
// into the tracer beyond the tracer itself, so opening a span performs no
// allocation.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	begin time.Duration
	a1k   string // up to two inline args, avoiding a map alloc per span
	a1v   int64
	a2k   string
	a2v   int64
}

// Begin opens a span named name on track tid. Close it with End.
func (t *Tracer) Begin(name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, begin: time.Since(t.start)}
}

// Arg attaches an integer argument to the span (shown in the viewer's
// details pane). At most two args are kept per span; later ones are
// dropped. Returns the span for chaining.
func (s Span) Arg(key string, v int64) Span {
	if s.t == nil {
		return s
	}
	switch {
	case s.a1k == "":
		s.a1k, s.a1v = key, v
	case s.a2k == "":
		s.a2k, s.a2v = key, v
	}
	return s
}

// End closes the span and records it.
//
//alloc:amortized records an event only when a tracer is attached; zero-alloc kernels run untraced
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := time.Since(s.t.start)
	var args map[string]any
	if s.a1k != "" {
		args = map[string]any{s.a1k: s.a1v}
		if s.a2k != "" {
			args[s.a2k] = s.a2v
		}
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, traceEvent{
		Name: s.name,
		Ph:   "X",
		Ts:   s.begin.Microseconds(),
		Dur:  end.Microseconds() - s.begin.Microseconds(),
		PID:  s.t.pid,
		TID:  s.tid,
		Args: args,
	})
	s.t.mu.Unlock()
}

// Instant records a zero-duration instant event on track tid.
func (t *Tracer) Instant(name string, tid int) {
	if t == nil {
		return
	}
	ts := time.Since(t.start).Microseconds()
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: name, Ph: "i", Ts: ts, PID: t.pid, TID: tid,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the trace as a Chrome trace-event JSON object
// ({"traceEvents": [...]}) ready to load into Perfetto. Safe to call while
// spans are still being recorded; it snapshots the events under the lock.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var evs []traceEvent
	var names map[int]string
	var pid int
	var proc string
	if t != nil {
		t.mu.Lock()
		evs = append(evs, t.events...)
		pid, proc = t.pid, t.proc
		names = make(map[int]string, len(t.names))
		for k, v := range t.names {
			names[k] = v
		}
		t.mu.Unlock()
	}
	// Metadata events name the process and threads in the viewer.
	meta := make([]traceEvent, 0, 1+len(names))
	if proc != "" {
		meta = append(meta, traceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": proc},
		})
	}
	for tid, name := range names {
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	out := struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{TraceEvents: append(meta, evs...)}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// NameTrack assigns a display name to track tid (e.g. "restart 3").
func (t *Tracer) NameTrack(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[tid] = name
	t.mu.Unlock()
}
