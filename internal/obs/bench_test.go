package obs

import (
	"io"
	"testing"
)

// BenchmarkSpanDisabled pins the cost of instrumentation when tracing is
// off: the acceptance criterion is 0 allocs/op (see also TestNilTracerIsFree
// for the hard assertion).
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("eval", 1).Arg("cand", int64(i))
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("eval", 1).Arg("cand", int64(i))
		sp.End()
	}
}

// BenchmarkFlightDisabled pins the cost of flight-recorder
// instrumentation when recording is off: 0 allocs/op, same contract as
// the disabled tracer (TestFlightNilIsFree holds the hard assertion).
func BenchmarkFlightDisabled(b *testing.B) {
	var f *Flight
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightRound, 0, i, float64(i), 0)
	}
}

func BenchmarkFlightEnabled(b *testing.B) {
	f := NewFlight(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightRound, 0, i, float64(i), 0)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_par_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.001)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter("bench_shards_total", "shards", "shard", string(rune('a'+i))).Inc()
	}
	h := r.Histogram("bench_seconds", "latency", nil)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.01)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
