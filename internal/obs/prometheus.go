package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// /metrics endpoints.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family of the registry in Prometheus text
// exposition format (version 0.0.4): `# HELP` and `# TYPE` headers followed
// by one sample line per series, families sorted by name, series in
// registration order. Histograms expand into the conventional
// `_bucket{le=...}` / `_sum` / `_count` triple with cumulative buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	for _, s := range f.snapshotSeries() {
		if err := f.writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writeSeries(w io.Writer, s seriesView) error {
	switch {
	case s.c != nil:
		return writeSample(w, f.name, s.labels, s.c.Value())
	case s.gf != nil:
		return writeSample(w, f.name, s.labels, s.gf())
	case s.g != nil:
		return writeSample(w, f.name, s.labels, s.g.Value())
	case s.h != nil:
		cum, total := s.h.cumulative()
		for i, ub := range s.h.upper {
			le := formatFloat(ub)
			if err := writeSample(w, f.name+"_bucket", joinLabels(s.labels, `le="`+le+`"`), float64(cum[i])); err != nil {
				return err
			}
		}
		if err := writeSample(w, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`), float64(total)); err != nil {
			return err
		}
		if err := writeSample(w, f.name+"_sum", s.labels, s.h.Sum()); err != nil {
			return err
		}
		return writeSample(w, f.name+"_count", s.labels, float64(total))
	}
	return nil
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(w io.Writer, name, labels string, v float64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// ValidateExposition checks that r is well-formed Prometheus text
// exposition format: every comment line is a syntactically valid HELP or
// TYPE line, every sample line parses (metric name, optional balanced label
// set, float value, optional timestamp), every sample belongs to a family
// announced by a preceding TYPE line (histogram samples may use the
// _bucket/_sum/_count suffixes), and no family declares TYPE twice. It
// returns nil for valid input and an error naming the first offending line
// otherwise. `make serve-smoke` runs it against the live daemon's /metrics.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := map[string]string{}
	sawSample := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line, types); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		sawSample = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

func validateComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return fmt.Errorf("malformed comment %q (want # HELP/TYPE name ...)", line)
	}
	switch fields[1] {
	case "HELP":
		if !nameRe(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	case "TYPE":
		if !nameRe(fields[2]) {
			return fmt.Errorf("TYPE for invalid metric name %q", fields[2])
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line %q missing the type", line)
		}
		typ := strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := types[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %q", fields[2])
		}
		types[fields[2]] = typ
	default:
		return fmt.Errorf("unknown comment keyword %q (want HELP or TYPE)", fields[1])
	}
	return nil
}

func validateSample(line string, types map[string]string) error {
	rest := line
	// Metric name.
	end := 0
	for end < len(rest) && rest[end] != '{' && rest[end] != ' ' {
		end++
	}
	name := rest[:end]
	if !nameRe(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[end:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		close := findLabelEnd(rest)
		if close < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := validateLabels(rest[1:close]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[close+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	if !validFloat(fields[0]) {
		return fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	// The sample must belong to an announced family. Histogram (and
	// summary) samples carry the conventional suffixes.
	base := name
	if t, ok := types[base]; ok {
		if t == "histogram" {
			return fmt.Errorf("histogram %q sampled without _bucket/_sum/_count suffix", name)
		}
		return nil
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		trimmed := strings.TrimSuffix(base, suf)
		if trimmed == base {
			continue
		}
		if t, ok := types[trimmed]; ok {
			if t != "histogram" && t != "summary" {
				return fmt.Errorf("sample %q uses %s suffix on %s family %q", name, suf, t, trimmed)
			}
			return nil
		}
	}
	return fmt.Errorf("sample %q has no preceding TYPE line", name)
}

// findLabelEnd returns the index of the closing brace of a label set that
// starts at s[0] == '{', honoring quoted values with escapes.
func findLabelEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++ // skip the escaped byte
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == '}':
			return i
		}
	}
	return -1
}

// validateLabels checks `k="v",...` pairs (empty set allowed).
func validateLabels(body string) error {
	if strings.TrimSpace(body) == "" {
		return nil
	}
	for _, pair := range splitLabelPairs(body) {
		eq := strings.Index(pair, "=")
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", pair)
		}
		k := strings.TrimSpace(pair[:eq])
		v := strings.TrimSpace(pair[eq+1:])
		if !nameRe(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %s not quoted", v)
		}
	}
	return nil
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(body); i++ {
		switch {
		case inQuote && body[i] == '\\':
			i++
		case body[i] == '"':
			inQuote = !inQuote
		case !inQuote && body[i] == ',':
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// validFloat accepts Prometheus sample values: Go floats plus the special
// spellings NaN, +Inf, -Inf.
func validFloat(s string) bool {
	switch s {
	case "NaN", "+Inf", "-Inf", "Inf":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
