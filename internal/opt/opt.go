// Package opt is a small machine-level optimizer over PISA programs: copy
// propagation and dead-code elimination. The benchmark kernels are written
// by hand in both -O0 and -O3 shapes, but user-supplied kernels (prog.Parse,
// iseexplore -file) often carry redundant moves and dead definitions that
// would pollute dataflow graphs and inflate ISE candidates; one Optimize
// pass cleans them up.
//
// Every transformation is observable-preserving in the strictest sense: the
// final register file, the HI:LO register and all of memory are bit-for-bit
// identical to the unoptimized program's (halt is treated as using every
// register), which the property tests verify by running both programs on
// the interpreter.
package opt

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Optimize applies copy propagation then dead-code elimination until a fixed
// point, returning a new program. The input program is not modified.
func Optimize(p *prog.Program) (*prog.Program, error) {
	cur := p
	for i := 0; i < 8; i++ { // fixed-point guard
		next, changed, err := optimizeOnce(cur)
		if err != nil {
			return nil, err
		}
		if !changed {
			return cur, nil
		}
		cur = next
	}
	return cur, nil
}

func optimizeOnce(p *prog.Program) (*prog.Program, bool, error) {
	b := prog.NewBuilder(p.Name)
	changed := false
	liveOut := exitStrictLiveness(p)
	for bi, blk := range p.Blocks {
		if blk.Label != "" {
			b.Label(blk.Label)
		}
		instrs := copyPropagate(blk.Instrs)
		instrs, removed := eliminateDead(instrs, liveOut[bi])
		if removed || !sameInstrs(instrs, blk.Instrs) {
			changed = true
		}
		for _, in := range instrs {
			b.Emit(in)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, false, err
	}
	return out, changed, nil
}

// isCopy reports whether the instruction is a register-to-register move and
// returns (dst, src).
func isCopy(in prog.Instr) (dst, src prog.Reg, ok bool) {
	switch in.Op {
	case isa.OpADDU, isa.OpADD, isa.OpOR, isa.OpXOR:
		if in.Src2 == prog.Zero && in.Src1 != prog.Zero {
			return in.Dst, in.Src1, true
		}
		if (in.Op == isa.OpADDU || in.Op == isa.OpADD || in.Op == isa.OpOR) &&
			in.Src1 == prog.Zero && in.Src2 != prog.Zero {
			return in.Dst, in.Src2, true
		}
	case isa.OpADDIU, isa.OpADDI, isa.OpORI, isa.OpXORI:
		if in.Imm == 0 && in.Src1 != prog.Zero {
			return in.Dst, in.Src1, true
		}
	}
	return 0, 0, false
}

// srcFields reports which operand fields of the opcode are register
// sources.
func srcFields(op isa.Opcode) (s1, s2 bool) {
	switch {
	case op == isa.OpHALT, op == isa.OpJ, op == isa.OpLUI,
		op == isa.OpMFHI, op == isa.OpMFLO:
		return false, false
	case isa.IsLoad(op):
		return true, false
	case isa.IsStore(op):
		return true, true
	case op == isa.OpBEQ, op == isa.OpBNE:
		return true, true
	case isa.IsBranch(op): // single-register branches
		return true, false
	case isa.HasImmediate(op):
		return true, false
	default: // R-type and mult
		return true, true
	}
}

// copyPropagate rewrites register sources that currently hold a copy of
// another register. The copy instructions themselves stay (DCE removes them
// once dead).
func copyPropagate(instrs []prog.Instr) []prog.Instr {
	out := make([]prog.Instr, len(instrs))
	copyOf := map[prog.Reg]prog.Reg{} // reg -> the reg it copies
	resolve := func(r prog.Reg) prog.Reg {
		if s, ok := copyOf[r]; ok {
			return s
		}
		return r
	}
	invalidate := func(r prog.Reg) {
		delete(copyOf, r)
		for d, s := range copyOf {
			if s == r {
				delete(copyOf, d)
			}
		}
	}
	for i, in := range instrs {
		rewritten := in
		s1, s2 := srcFields(in.Op)
		if s1 && rewritten.Src1 != prog.Zero {
			rewritten.Src1 = resolve(rewritten.Src1)
		}
		if s2 && rewritten.Src2 != prog.Zero {
			rewritten.Src2 = resolve(rewritten.Src2)
		}
		out[i] = rewritten
		if d, ok := rewritten.Defs(); ok {
			invalidate(d)
			if dst, src, isCp := isCopy(rewritten); isCp && dst != src && dst != prog.RegHILO && src != prog.RegHILO {
				copyOf[dst] = src
			}
		}
	}
	return out
}

// eliminateDead removes instructions whose definition is provably
// unobservable: not used later in the block and not in the block's live-out
// set. Memory, control and HI:LO-writing instructions always stay.
func eliminateDead(instrs []prog.Instr, liveOut prog.RegSet) ([]prog.Instr, bool) {
	keep := make([]bool, len(instrs))
	live := liveOut
	for i := len(instrs) - 1; i >= 0; i-- {
		in := instrs[i]
		d, defines := in.Defs()
		sideEffect := isa.IsStore(in.Op) || isa.IsBranch(in.Op) || d == prog.RegHILO
		if sideEffect || !defines || live.Contains(d) {
			keep[i] = true
			if defines {
				live = live.Remove(d)
			}
			for _, u := range in.Uses() {
				if u != prog.Zero {
					live = live.Add(u)
				}
			}
		}
	}
	var out []prog.Instr
	removed := false
	for i, in := range instrs {
		if keep[i] {
			out = append(out, in)
		} else {
			removed = true
		}
	}
	return out, removed
}

// exitStrictLiveness computes per-block live-out sets where halt uses every
// register, so the optimizer preserves the exact final machine state.
func exitStrictLiveness(p *prog.Program) []prog.RegSet {
	n := len(p.Blocks)
	liveIn := make([]prog.RegSet, n)
	liveOut := make([]prog.RegSet, n)
	var all prog.RegSet
	for r := prog.Reg(0); int(r) < prog.NumRegs; r++ {
		if r != prog.Zero {
			all = all.Add(r)
		}
	}
	use := make([]prog.RegSet, n)
	def := make([]prog.RegSet, n)
	isExit := make([]bool, n)
	for i, b := range p.Blocks {
		var u, d prog.RegSet
		for _, in := range b.Instrs {
			for _, r := range in.Uses() {
				if !d.Contains(r) && r != prog.Zero {
					u = u.Add(r)
				}
			}
			if dr, ok := in.Defs(); ok {
				d = d.Add(dr)
			}
			if in.Op == isa.OpHALT {
				isExit[i] = true
			}
		}
		use[i], def[i] = u, d
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var out prog.RegSet
			if isExit[i] {
				out = all
			}
			for _, s := range p.Blocks[i].Succs {
				out = out.Union(liveIn[s])
			}
			in := use[i].Union(out &^ def[i])
			if out != liveOut[i] || in != liveIn[i] {
				liveOut[i], liveIn[i] = out, in
				changed = true
			}
		}
	}
	return liveOut
}

func sameInstrs(a, b []prog.Instr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
