package opt

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/randprog"
	"repro/internal/vm"
)

func build(t *testing.T, emit func(b *prog.Builder)) *prog.Program {
	t.Helper()
	b := prog.NewBuilder("t")
	emit(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// machines runs p on a fresh VM and returns it.
func runVM(t *testing.T, p *prog.Program) *vm.Machine {
	t.Helper()
	m := vm.NewMachine(1 << 10)
	if _, err := m.Run(p, 1_000_000); err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	return m
}

// sameState compares the observable machine state of two runs.
func sameState(t *testing.T, a, b *vm.Machine) bool {
	t.Helper()
	for r := prog.Reg(0); int(r) < prog.NumRegs; r++ {
		if r == prog.RegHILO {
			continue // compared via mfhi/mflo effects; hilo itself below
		}
		if a.Reg(r) != b.Reg(r) {
			t.Logf("reg %v: %#x vs %#x", r, a.Reg(r), b.Reg(r))
			return false
		}
	}
	for addr := uint32(0); int(addr) < a.MemSize(); addr += 4 {
		wa, _ := a.LoadWord(addr)
		wb, _ := b.LoadWord(addr)
		if wa != wb {
			t.Logf("mem[%#x]: %#x vs %#x", addr, wa, wb)
			return false
		}
	}
	return true
}

func TestDeadCopyEliminated(t *testing.T) {
	p := build(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 7)
		b.R(isa.OpADDU, prog.T1, prog.T0, prog.Zero) // copy t1 = t0
		b.R(isa.OpADD, prog.V0, prog.T1, prog.T1)    // uses propagate to t0
		b.R(isa.OpADDU, prog.T1, prog.V0, prog.Zero) // t1 live at exit: kept
		b.Halt()
	})
	q, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	// The first copy becomes dead after propagation... but $t1 is live at
	// exit via the final copy, and the first def is overwritten, so it goes.
	if q.NumInstrs() >= p.NumInstrs() {
		t.Fatalf("nothing eliminated:\n%s", q)
	}
	if !strings.Contains(q.String(), "add $v0, $t0, $t0") {
		t.Fatalf("copy not propagated:\n%s", q)
	}
	if !sameState(t, runVM(t, p), runVM(t, q)) {
		t.Fatal("state changed")
	}
}

func TestOverwrittenDefEliminated(t *testing.T) {
	p := build(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 1) // dead: overwritten below
		b.I(isa.OpORI, prog.T0, prog.Zero, 2)
		b.Halt()
	})
	q, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumInstrs() != 2 {
		t.Fatalf("instrs = %d, want 2:\n%s", q.NumInstrs(), q)
	}
	if !sameState(t, runVM(t, p), runVM(t, q)) {
		t.Fatal("state changed")
	}
}

func TestFinalRegisterValuesPreserved(t *testing.T) {
	// A def never read again is still observable in the final register
	// file, so it must NOT be eliminated.
	p := build(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T5, prog.Zero, 99)
		b.Halt()
	})
	q, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumInstrs() != 2 {
		t.Fatalf("observable def eliminated:\n%s", q)
	}
}

func TestStoresAndBranchesKept(t *testing.T) {
	p := build(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 64)
		b.Store(isa.OpSW, prog.T0, prog.T0, 0)
		b.Label("x")
		b.I(isa.OpADDI, prog.T0, prog.T0, -32)
		b.Branch1(isa.OpBGTZ, prog.T0, "x")
		b.Halt()
	})
	q, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumInstrs() != p.NumInstrs() {
		t.Fatalf("side-effecting program shrank:\n%s", q)
	}
	if !sameState(t, runVM(t, p), runVM(t, q)) {
		t.Fatal("state changed")
	}
}

func TestCopyThroughBranchNotPropagated(t *testing.T) {
	// Copies must not propagate across block boundaries (the map resets).
	p := build(t, func(b *prog.Builder) {
		b.R(isa.OpADDU, prog.T1, prog.A0, prog.Zero) // t1 = a0
		b.Branch(isa.OpBEQ, prog.A1, prog.Zero, "skip")
		b.I(isa.OpORI, prog.T1, prog.Zero, 5) // t1 redefined on one path
		b.Label("skip")
		b.R(isa.OpADD, prog.V0, prog.T1, prog.T1)
		b.Halt()
	})
	q, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "add $v0, $t1, $t1") {
		t.Fatalf("cross-block propagation happened:\n%s", q)
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	p := build(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 7)
		b.R(isa.OpADDU, prog.T1, prog.T0, prog.Zero)
		b.R(isa.OpADD, prog.V0, prog.T1, prog.T0)
		b.Halt()
	})
	q1, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Optimize(q1)
	if err != nil {
		t.Fatal(err)
	}
	if q1.String() != q2.String() {
		t.Fatalf("not idempotent:\n%s\nvs\n%s", q1, q2)
	}
}

// TestPropertyOptimizePreservesSemantics: random programs seeded with
// redundant copies behave identically before and after optimization.
func TestPropertyOptimizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		base := randprog.Program(r, 1+r.Intn(3), 2+r.Intn(8))
		// Re-emit with injected copies and dead defs to give the optimizer
		// something to chew on.
		b := prog.NewBuilder("seeded")
		for _, blk := range base.Blocks {
			if blk.Label != "" {
				b.Label(blk.Label)
			}
			for _, in := range blk.Instrs {
				if r.Intn(3) == 0 {
					b.R(isa.OpADDU, prog.T6, prog.T0, prog.Zero) // copy
				}
				if r.Intn(4) == 0 {
					b.I(isa.OpORI, prog.T7, prog.Zero, int32(r.Intn(100))) // likely dead
				}
				b.Emit(in)
			}
		}
		p, err := b.Build()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		q, err := Optimize(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if q.NumInstrs() > p.NumInstrs() {
			t.Fatalf("trial %d: optimizer grew the program", trial)
		}
		if !sameState(t, runVM(t, p), runVM(t, q)) {
			t.Fatalf("trial %d: semantics changed:\n%s\nvs\n%s", trial, p, q)
		}
	}
}
