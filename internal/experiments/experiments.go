// Package experiments regenerates the paper's evaluation artifacts:
//
//	Table 5.1.1 — hardware implementation-option settings
//	Fig. 5.2.1  — execution-time reduction vs. silicon-area constraint
//	Fig. 5.2.2  — execution-time reduction vs. number of ISEs
//	Fig. 5.2.3  — silicon-area cost vs. execution-time reduction
//	Headlines   — 1-ISE reduction vs. no-ISE; MI vs. SI at equal area
//
// Exploration pools are cached per (benchmark, optimization level, machine,
// algorithm), so the constraint sweeps reuse one expensive exploration per
// combination exactly as the paper's flow separates exploration from
// selection.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/machine"
	"repro/internal/selection"
)

// AreaCaps are the silicon-area constraints of Fig. 5.2.1 in µm².
var AreaCaps = []float64{20000, 40000, 80000, 160000, 320000}

// ISECounts are the instruction-count constraints of Fig. 5.2.2.
var ISECounts = []int{1, 2, 4, 8, 16, 32}

// Suite runs the evaluation matrix with a shared pool cache.
type Suite struct {
	Params     core.Params
	HotBlocks  int
	Benchmarks []string
	OptLevels  []string
	Machines   []machine.Config
	// Workers overrides Params.Workers for every pool build: the size of
	// the bounded worker pool that fans out block explorations and
	// restarts. 0 keeps Params.Workers (whose own 0 means one worker per
	// CPU). Results are identical for every setting.
	Workers int

	mu sync.Mutex
	// pools caches built exploration pools; guarded by mu.
	pools map[poolKey]*flow.Pool
}

type poolKey struct {
	bench, opt, machine string
	algo                flow.Algorithm
}

// NewSuite returns the full evaluation matrix of §5.1 (7 benchmarks × 2
// optimization levels × 6 machine configurations) with the given exploration
// parameters.
func NewSuite(p core.Params) *Suite {
	return &Suite{
		Params:     p,
		HotBlocks:  3,
		Benchmarks: bench.Names(),
		OptLevels:  bench.Opts(),
		Machines:   machine.Configs(),
		pools:      map[poolKey]*flow.Pool{},
	}
}

// Pool returns the cached exploration pool for one combination, building it
// on first use.
func (s *Suite) Pool(name, opt string, cfg machine.Config, algo flow.Algorithm) (*flow.Pool, error) {
	k := poolKey{name, opt, cfg.Name, algo}
	s.mu.Lock()
	p, ok := s.pools[k]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	bm, err := bench.Get(name, opt)
	if err != nil {
		return nil, err
	}
	params := s.Params
	if s.Workers != 0 {
		params.Workers = s.Workers
	}
	p, err = flow.BuildPool(bm, flow.Options{
		Machine:   cfg,
		Params:    params,
		Algorithm: algo,
		HotBlocks: s.HotBlocks,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s on %s (%s): %w", name, opt, cfg.Name, algo, err)
	}
	s.mu.Lock()
	s.pools[k] = p
	s.mu.Unlock()
	return p, nil
}

// ConfigLabel renders the paper's X-axis label, e.g. "MI(4/2, 2IS, O3)".
func ConfigLabel(algo flow.Algorithm, cfg machine.Config, opt string) string {
	return fmt.Sprintf("%s(%d/%d, %dIS, %s)", algo, cfg.ReadPorts, cfg.WritePorts, cfg.IssueWidth, opt)
}

// avgReduction evaluates every benchmark under the constraints and returns
// the mean execution-time reduction.
func (s *Suite) avgReduction(opt string, cfg machine.Config, algo flow.Algorithm, c selection.Constraints) (float64, error) {
	total := 0.0
	for _, name := range s.Benchmarks {
		pool, err := s.Pool(name, opt, cfg, algo)
		if err != nil {
			return 0, err
		}
		rep, err := pool.Evaluate(c)
		if err != nil {
			return 0, err
		}
		total += rep.Reduction()
	}
	return total / float64(len(s.Benchmarks)), nil
}

// AreaSweep is the data of Fig. 5.2.1: one series per configuration label,
// one point per area constraint.
type AreaSweep struct {
	Caps   []float64
	Labels []string
	// Reduction[label][i] is the average execution-time reduction at
	// Caps[i].
	Reduction map[string][]float64
}

// RunAreaSweep regenerates Fig. 5.2.1.
func (s *Suite) RunAreaSweep() (*AreaSweep, error) {
	out := &AreaSweep{Caps: AreaCaps, Reduction: map[string][]float64{}}
	for _, algo := range []flow.Algorithm{flow.MI, flow.SI} {
		for _, cfg := range s.Machines {
			for _, opt := range s.OptLevels {
				label := ConfigLabel(algo, cfg, opt)
				out.Labels = append(out.Labels, label)
				for _, areaCap := range AreaCaps {
					r, err := s.avgReduction(opt, cfg, algo, selection.Constraints{MaxAreaUM2: areaCap})
					if err != nil {
						return nil, err
					}
					out.Reduction[label] = append(out.Reduction[label], r)
				}
			}
		}
	}
	return out, nil
}

// CountSweep is the data of Fig. 5.2.2: reduction per ISE-count budget.
type CountSweep struct {
	Counts []int
	Labels []string
	// Reduction[label][i] is the average reduction with Counts[i] ISEs.
	Reduction map[string][]float64
}

// RunCountSweep regenerates Fig. 5.2.2.
func (s *Suite) RunCountSweep() (*CountSweep, error) {
	out := &CountSweep{Counts: ISECounts, Reduction: map[string][]float64{}}
	for _, algo := range []flow.Algorithm{flow.MI, flow.SI} {
		for _, cfg := range s.Machines {
			for _, opt := range s.OptLevels {
				label := ConfigLabel(algo, cfg, opt)
				out.Labels = append(out.Labels, label)
				for _, n := range ISECounts {
					r, err := s.avgReduction(opt, cfg, algo, selection.Constraints{MaxISEs: n})
					if err != nil {
						return nil, err
					}
					out.Reduction[label] = append(out.Reduction[label], r)
				}
			}
		}
	}
	return out, nil
}

// AreaVsTime is the data of Fig. 5.2.3: per ISE-count budget, the average
// silicon-area cost and execution-time reduction of both algorithms.
type AreaVsTime struct {
	Counts []int
	// Area[algo][i] and Reduction[algo][i] aggregate over all benchmarks,
	// optimization levels and machines.
	Area      map[flow.Algorithm][]float64
	Reduction map[flow.Algorithm][]float64
}

// RunAreaVsTime regenerates Fig. 5.2.3.
func (s *Suite) RunAreaVsTime() (*AreaVsTime, error) {
	out := &AreaVsTime{
		Counts:    ISECounts,
		Area:      map[flow.Algorithm][]float64{},
		Reduction: map[flow.Algorithm][]float64{},
	}
	for _, algo := range []flow.Algorithm{flow.MI, flow.SI} {
		for _, n := range ISECounts {
			areaSum, redSum, cells := 0.0, 0.0, 0
			for _, cfg := range s.Machines {
				for _, opt := range s.OptLevels {
					for _, name := range s.Benchmarks {
						pool, err := s.Pool(name, opt, cfg, algo)
						if err != nil {
							return nil, err
						}
						rep, err := pool.Evaluate(selection.Constraints{MaxISEs: n})
						if err != nil {
							return nil, err
						}
						areaSum += rep.AreaUM2
						redSum += rep.Reduction()
						cells++
					}
				}
			}
			out.Area[algo] = append(out.Area[algo], areaSum/float64(cells))
			out.Reduction[algo] = append(out.Reduction[algo], redSum/float64(cells))
		}
	}
	return out, nil
}

// MaxMinAvg is a summary triple over benchmarks.
type MaxMinAvg struct {
	Max, Min, Avg float64
	MaxName       string
	MinName       string
}

func summarize(vals map[string]float64) MaxMinAvg {
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	out := MaxMinAvg{Max: -1e18, Min: 1e18}
	sum := 0.0
	for _, n := range names {
		v := vals[n]
		sum += v
		if v > out.Max {
			out.Max, out.MaxName = v, n
		}
		if v < out.Min {
			out.Min, out.MinName = v, n
		}
	}
	if len(names) > 0 {
		out.Avg = sum / float64(len(names))
	}
	return out
}

// Headline reproduces the abstract's two claims.
type Headline struct {
	// OneISE: execution-time reduction with a single ISE vs. no ISE
	// (per benchmark, averaged over machines and optimization levels).
	OneISE MaxMinAvg
	// VsSI: percentage-point further reduction of MI over SI under the same
	// (320000 µm²) area constraint.
	VsSI MaxMinAvg
}

// RunHeadline computes the two headline summaries.
func (s *Suite) RunHeadline() (*Headline, error) {
	oneISE := map[string]float64{}
	vsSI := map[string]float64{}
	for _, name := range s.Benchmarks {
		oneSum, miSum, siSum, cells := 0.0, 0.0, 0.0, 0
		for _, cfg := range s.Machines {
			for _, opt := range s.OptLevels {
				miPool, err := s.Pool(name, opt, cfg, flow.MI)
				if err != nil {
					return nil, err
				}
				one, err := miPool.Evaluate(selection.Constraints{MaxISEs: 1})
				if err != nil {
					return nil, err
				}
				oneSum += one.Reduction()
				areaCap := AreaCaps[len(AreaCaps)-1]
				mi, err := miPool.Evaluate(selection.Constraints{MaxAreaUM2: areaCap})
				if err != nil {
					return nil, err
				}
				siPool, err := s.Pool(name, opt, cfg, flow.SI)
				if err != nil {
					return nil, err
				}
				si, err := siPool.Evaluate(selection.Constraints{MaxAreaUM2: areaCap})
				if err != nil {
					return nil, err
				}
				miSum += mi.Reduction()
				siSum += si.Reduction()
				cells++
			}
		}
		oneISE[name] = oneSum / float64(cells)
		vsSI[name] = (miSum - siSum) / float64(cells)
	}
	return &Headline{OneISE: summarize(oneISE), VsSI: summarize(vsSI)}, nil
}

// Breakdown is the per-benchmark decomposition of one configuration's
// average — the thesis reports per-benchmark bars behind every average.
type Breakdown struct {
	Machine  machine.Config
	OptLevel string
	Counts   []int
	// Reduction[algo][bench][i] is the reduction of bench with Counts[i]
	// ISEs.
	Reduction map[flow.Algorithm]map[string][]float64
}

// RunBreakdown regenerates the per-benchmark series for one machine and
// optimization level across the ISE-count budgets.
func (s *Suite) RunBreakdown(cfg machine.Config, opt string) (*Breakdown, error) {
	out := &Breakdown{
		Machine:  cfg,
		OptLevel: opt,
		Counts:   ISECounts,
		Reduction: map[flow.Algorithm]map[string][]float64{
			flow.MI: {}, flow.SI: {},
		},
	}
	for _, algo := range []flow.Algorithm{flow.MI, flow.SI} {
		for _, name := range s.Benchmarks {
			pool, err := s.Pool(name, opt, cfg, algo)
			if err != nil {
				return nil, err
			}
			for _, n := range ISECounts {
				rep, err := pool.Evaluate(selection.Constraints{MaxISEs: n})
				if err != nil {
					return nil, err
				}
				out.Reduction[algo][name] = append(out.Reduction[algo][name], rep.Reduction())
			}
		}
	}
	return out, nil
}
