package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/bench"
	"repro/internal/dfg"
)

// BenchStat summarizes one workload — the "benchmark characteristics" table
// customary in ISE papers.
type BenchStat struct {
	Name        string
	Opt         string
	StaticOps   int
	DynamicOps  uint64
	Blocks      int
	HotOps      int     // size of the hottest basic block
	HotDepth    int     // its dependence depth
	HotILP      float64 // ops / depth: the dataflow-limit parallelism
	HotEligible int     // ISE-eligible operations in the hot block
}

// CollectBenchStats profiles every benchmark (including extensions) and
// derives its characteristics.
func CollectBenchStats() ([]BenchStat, error) {
	var out []BenchStat
	for _, name := range bench.Extended() {
		for _, opt := range bench.Opts() {
			bm, err := bench.Get(name, opt)
			if err != nil {
				return nil, err
			}
			prof, err := bm.Run()
			if err != nil {
				return nil, err
			}
			hot := prof.HotBlocks(bm.Prog, 1)
			d := dfg.BuildAll(bm.Prog, hot, prof.BlockCounts)[0]
			eligible := 0
			for _, n := range d.Nodes {
				if n.ISEEligible() {
					eligible++
				}
			}
			st := BenchStat{
				Name:        name,
				Opt:         opt,
				StaticOps:   bm.Prog.NumInstrs(),
				DynamicOps:  prof.DynInstrs,
				Blocks:      len(bm.Prog.Blocks),
				HotOps:      d.Len(),
				HotDepth:    d.CriticalPathLen(),
				HotEligible: eligible,
			}
			if st.HotDepth > 0 {
				st.HotILP = float64(st.HotOps) / float64(st.HotDepth)
			}
			out = append(out, st)
		}
	}
	return out, nil
}

// RenderBenchStats prints the characteristics table.
func RenderBenchStats(w io.Writer) error {
	stats, err := CollectBenchStats()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Benchmark characteristics (hottest basic block)")
	fmt.Fprintf(w, "%-14s %-4s %7s %9s %7s %7s %7s %6s %9s\n",
		"benchmark", "opt", "static", "dynamic", "blocks", "hot ops", "depth", "ILP", "eligible")
	fmt.Fprintln(w, strings.Repeat("-", 78))
	for _, s := range stats {
		fmt.Fprintf(w, "%-14s %-4s %7d %9d %7d %7d %7d %6.2f %9d\n",
			s.Name, s.Opt, s.StaticOps, s.DynamicOps, s.Blocks, s.HotOps, s.HotDepth, s.HotILP, s.HotEligible)
	}
	return nil
}

// CSV renders Fig. 5.2.1 data as comma-separated values.
func (a *AreaSweep) CSV(w io.Writer) {
	fmt.Fprint(w, "config")
	for _, c := range a.Caps {
		fmt.Fprintf(w, ",area_%.0f", c)
	}
	fmt.Fprintln(w)
	for _, label := range a.Labels {
		fmt.Fprint(w, csvQuote(label))
		for _, r := range a.Reduction[label] {
			fmt.Fprintf(w, ",%.4f", r)
		}
		fmt.Fprintln(w)
	}
}

// CSV renders Fig. 5.2.2 data as comma-separated values.
func (c *CountSweep) CSV(w io.Writer) {
	fmt.Fprint(w, "config")
	for _, n := range c.Counts {
		fmt.Fprintf(w, ",ises_%d", n)
	}
	fmt.Fprintln(w)
	for _, label := range c.Labels {
		fmt.Fprint(w, csvQuote(label))
		for _, r := range c.Reduction[label] {
			fmt.Fprintf(w, ",%.4f", r)
		}
		fmt.Fprintln(w)
	}
}

// CSV renders Fig. 5.2.3 data as comma-separated values.
func (v *AreaVsTime) CSV(w io.Writer) {
	fmt.Fprintln(w, "ises,mi_area,si_area,mi_reduction,si_reduction")
	for i, n := range v.Counts {
		fmt.Fprintf(w, "%d,%.1f,%.1f,%.4f,%.4f\n",
			n, v.Area["MI"][i], v.Area["SI"][i], v.Reduction["MI"][i], v.Reduction["SI"][i])
	}
}

func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
