package experiments

import (
	"fmt"
	"io"

	"repro/internal/flow"
)

// This file renders the evaluation figures as standalone SVG documents —
// grouped bar charts in the layout of the paper's Figs. 5.2.1-5.2.3 — using
// only the standard library.

// svgSeries is one legend entry of a grouped bar chart.
type svgSeries struct {
	Name   string
	Values []float64 // one per category
}

// svgPalette cycles for series fills.
var svgPalette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
	"#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2",
}

// writeGroupedBars emits a grouped bar chart. Values are fractions rendered
// as percentages on the Y axis.
func writeGroupedBars(w io.Writer, title string, categories []string, series []svgSeries) {
	const (
		width   = 1280
		height  = 480
		marginL = 60
		marginR = 20
		marginT = 40
		marginB = 150
		plotW   = width - marginL - marginR
		plotH   = height - marginT - marginB
		yTicks  = 5
	)
	maxV := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV *= 1.1

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(w, `<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, title)

	// Y axis with percentage ticks.
	for t := 0; t <= yTicks; t++ {
		v := maxV * float64(t) / yTicks
		y := float64(marginT+plotH) - float64(plotH)*float64(t)/yTicks
		fmt.Fprintf(w, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(w, `<text x="%d" y="%.1f" text-anchor="end">%.0f%%</text>`+"\n", marginL-6, y+4, 100*v)
	}

	// Bars.
	nCat := len(categories)
	nSer := len(series)
	if nCat > 0 && nSer > 0 {
		catW := float64(plotW) / float64(nCat)
		barW := catW * 0.8 / float64(nSer)
		for ci, cat := range categories {
			x0 := float64(marginL) + catW*float64(ci) + catW*0.1
			for si, s := range series {
				v := 0.0
				if ci < len(s.Values) {
					v = s.Values[ci]
				}
				h := float64(plotH) * v / maxV
				x := x0 + barW*float64(si)
				y := float64(marginT+plotH) - h
				fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
					x, y, barW, h, svgPalette[si%len(svgPalette)])
			}
			// Rotated category label.
			lx := x0 + catW*0.4
			ly := float64(marginT + plotH + 10)
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" text-anchor="end" transform="rotate(-45 %.1f %.1f)">%s</text>`+"\n",
				lx, ly, lx, ly, cat)
		}
	}

	// Legend.
	lx, ly := marginL, height-18
	for si, s := range series {
		fmt.Fprintf(w, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", lx, ly-10, svgPalette[si%len(svgPalette)])
		fmt.Fprintf(w, `<text x="%d" y="%d">%s</text>`+"\n", lx+16, ly, s.Name)
		lx += 16 + 9*len(s.Name) + 24
	}
	fmt.Fprintln(w, `</svg>`)
}

// SVG renders Fig. 5.2.1 as a grouped bar chart (configs on X, one bar per
// area constraint).
func (a *AreaSweep) SVG(w io.Writer) {
	var series []svgSeries
	for i, c := range a.Caps {
		s := svgSeries{Name: fmt.Sprintf("%.0fk µm²", c/1000)}
		for _, label := range a.Labels {
			s.Values = append(s.Values, a.Reduction[label][i])
		}
		_ = i
		series = append(series, s)
	}
	writeGroupedBars(w, "Figure 5.2.1: execution time reduction under silicon area constraints", a.Labels, series)
}

// SVG renders Fig. 5.2.2 (configs on X, one bar per ISE-count budget).
func (c *CountSweep) SVG(w io.Writer) {
	var series []svgSeries
	for i, n := range c.Counts {
		s := svgSeries{Name: fmt.Sprintf("%d ISEs", n)}
		for _, label := range c.Labels {
			s.Values = append(s.Values, c.Reduction[label][i])
		}
		_ = i
		series = append(series, s)
	}
	writeGroupedBars(w, "Figure 5.2.2: execution time reduction for different numbers of ISEs", c.Labels, series)
}

// SVG renders Fig. 5.2.3: reduction bars for MI and SI per ISE budget, with
// the area cost written above each group.
func (v *AreaVsTime) SVG(w io.Writer) {
	categories := make([]string, len(v.Counts))
	for i, n := range v.Counts {
		categories[i] = fmt.Sprintf("%d ISEs\n", n)
		categories[i] = fmt.Sprintf("%d ISEs (MI %.0fk / SI %.0fk µm²)", n,
			v.Area[flow.MI][i]/1000, v.Area[flow.SI][i]/1000)
	}
	series := []svgSeries{
		{Name: "MI reduction", Values: v.Reduction[flow.MI]},
		{Name: "SI reduction", Values: v.Reduction[flow.SI]},
	}
	writeGroupedBars(w, "Figure 5.2.3: silicon area cost vs. execution time reduction", categories, series)
}
