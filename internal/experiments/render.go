package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/flow"
	"repro/internal/isa"
)

// RenderTable511 prints the hardware implementation-option settings in the
// paper's Table 5.1.1 layout.
func RenderTable511(w io.Writer) {
	fmt.Fprintln(w, "Table 5.1.1: Hardware implementation option settings")
	fmt.Fprintf(w, "%-28s %10s %12s\n", "Operations", "Delay (ns)", "Area (µm²)")
	fmt.Fprintln(w, strings.Repeat("-", 52))
	for _, row := range isa.Table511() {
		names := make([]string, len(row.Ops))
		for i, op := range row.Ops {
			names[i] = op.String()
		}
		fmt.Fprintf(w, "%-28s %10.2f %12.2f\n", strings.Join(names, " "), row.DelayNS, row.AreaUM2)
	}
}

// Render prints Fig. 5.2.1 as a table: one row per configuration label, one
// column per area constraint.
func (a *AreaSweep) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5.2.1: Execution time reduction under silicon area constraints")
	fmt.Fprintf(w, "%-22s", "config \\ area µm²")
	for _, c := range a.Caps {
		fmt.Fprintf(w, " %7.0fk ", c/1000)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 22+10*len(a.Caps)))
	for _, label := range a.Labels {
		fmt.Fprintf(w, "%-22s", label)
		for _, r := range a.Reduction[label] {
			fmt.Fprintf(w, " %8.2f%%", 100*r)
		}
		fmt.Fprintln(w)
	}
}

// Render prints Fig. 5.2.2 as a table: one row per configuration label, one
// column per ISE-count budget.
func (c *CountSweep) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5.2.2: Execution time reduction for different numbers of ISEs")
	fmt.Fprintf(w, "%-22s", "config \\ #ISEs")
	for _, n := range c.Counts {
		fmt.Fprintf(w, " %8d ", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 22+10*len(c.Counts)))
	for _, label := range c.Labels {
		fmt.Fprintf(w, "%-22s", label)
		for _, r := range c.Reduction[label] {
			fmt.Fprintf(w, " %8.2f%%", 100*r)
		}
		fmt.Fprintln(w)
	}
}

// Render prints Fig. 5.2.3: area cost and reduction per ISE count for both
// algorithms.
func (v *AreaVsTime) Render(w io.Writer) {
	fmt.Fprintln(w, "Figure 5.2.3: Silicon area cost vs. execution time reduction")
	fmt.Fprintf(w, "%6s %14s %14s %12s %12s\n", "#ISEs", "MI area µm²", "SI area µm²", "MI time", "SI time")
	fmt.Fprintln(w, strings.Repeat("-", 64))
	for i, n := range v.Counts {
		fmt.Fprintf(w, "%6d %14.0f %14.0f %11.2f%% %11.2f%%\n",
			n,
			v.Area[flow.MI][i], v.Area[flow.SI][i],
			100*v.Reduction[flow.MI][i], 100*v.Reduction[flow.SI][i])
	}
}

// Render prints the headline comparison of the abstract.
func (h *Headline) Render(w io.Writer) {
	fmt.Fprintln(w, "Headline results")
	fmt.Fprintf(w, "  one ISE vs no ISE:   max %.2f%% (%s)  min %.2f%% (%s)  avg %.2f%%\n",
		100*h.OneISE.Max, h.OneISE.MaxName, 100*h.OneISE.Min, h.OneISE.MinName, 100*h.OneISE.Avg)
	fmt.Fprintf(w, "  MI vs SI, same area: max %.2fpp (%s)  min %.2fpp (%s)  avg %.2fpp\n",
		100*h.VsSI.Max, h.VsSI.MaxName, 100*h.VsSI.Min, h.VsSI.MinName, 100*h.VsSI.Avg)
	fmt.Fprintln(w, "  (paper: 17.17/12.9/14.79% and 11.39/2.87/7.16%)")
}

// Render prints the per-benchmark breakdown table.
func (b *Breakdown) Render(w io.Writer, benchmarks []string) {
	fmt.Fprintf(w, "Per-benchmark breakdown on %s, %s (reduction at #ISEs)\n", b.Machine.Name, b.OptLevel)
	fmt.Fprintf(w, "%-14s %-4s", "benchmark", "algo")
	for _, n := range b.Counts {
		fmt.Fprintf(w, " %7d", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 19+8*len(b.Counts)))
	for _, name := range benchmarks {
		for _, algo := range []flow.Algorithm{flow.MI, flow.SI} {
			rs, ok := b.Reduction[algo][name]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-14s %-4s", name, algo)
			for _, r := range rs {
				fmt.Fprintf(w, " %6.2f%%", 100*r)
			}
			fmt.Fprintln(w)
		}
	}
}
