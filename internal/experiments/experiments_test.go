package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/machine"
)

// reducedSuite keeps test runtime sensible: two benchmarks, two machines,
// fast exploration parameters, and one shared pool cache for the whole test
// package. The figure *shapes* asserted here are the ones the paper reports.
var reducedSuite = sync.OnceValue(func() *Suite {
	s := NewSuite(core.FastParams())
	s.Benchmarks = []string{"crc32", "bitcount"}
	s.OptLevels = []string{"O0", "O3"}
	s.Machines = []machine.Config{machine.New(2, 4, 2), machine.New(3, 6, 3)}
	s.HotBlocks = 2
	return s
})

func TestPoolCaching(t *testing.T) {
	s := reducedSuite()
	a, err := s.Pool("crc32", "O0", s.Machines[0], flow.MI)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Pool("crc32", "O0", s.Machines[0], flow.MI)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("pool not cached")
	}
	if _, err := s.Pool("nope", "O0", s.Machines[0], flow.MI); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestAreaSweepShape(t *testing.T) {
	s := reducedSuite()
	as, err := s.RunAreaSweep()
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := 2 /*algos*/ * 2 /*machines*/ * 2 /*opts*/
	if len(as.Labels) != wantLabels {
		t.Fatalf("labels = %d, want %d", len(as.Labels), wantLabels)
	}
	for _, label := range as.Labels {
		rs := as.Reduction[label]
		if len(rs) != len(AreaCaps) {
			t.Fatalf("%s: %d points, want %d", label, len(rs), len(AreaCaps))
		}
		for i, r := range rs {
			if r < 0 || r >= 1 {
				t.Errorf("%s: reduction[%d] = %v out of [0,1)", label, i, r)
			}
			// More area can never hurt: reductions are non-decreasing.
			if i > 0 && r < rs[i-1]-1e-9 {
				t.Errorf("%s: reduction dropped from %v to %v with more area", label, rs[i-1], r)
			}
		}
	}
	// Paper's key result: under the same constraints MI beats SI on average
	// (averaged over all configs and the largest cap).
	last := len(AreaCaps) - 1
	miSum, siSum := 0.0, 0.0
	for _, cfg := range s.Machines {
		for _, opt := range s.OptLevels {
			miSum += as.Reduction[ConfigLabel(flow.MI, cfg, opt)][last]
			siSum += as.Reduction[ConfigLabel(flow.SI, cfg, opt)][last]
		}
	}
	if miSum < siSum {
		t.Errorf("MI average (%v) below SI average (%v) at max area", miSum, siSum)
	}
}

func TestCountSweepShape(t *testing.T) {
	s := reducedSuite()
	cs, err := s.RunCountSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range cs.Labels {
		rs := cs.Reduction[label]
		if len(rs) != len(ISECounts) {
			t.Fatalf("%s: %d points", label, len(rs))
		}
		for i := 1; i < len(rs); i++ {
			if rs[i] < rs[i-1]-1e-9 {
				t.Errorf("%s: reduction dropped with more ISEs: %v -> %v", label, rs[i-1], rs[i])
			}
		}
	}
}

func TestAreaVsTimeShape(t *testing.T) {
	s := reducedSuite()
	v, err := s.RunAreaVsTime()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []flow.Algorithm{flow.MI, flow.SI} {
		if len(v.Area[algo]) != len(ISECounts) || len(v.Reduction[algo]) != len(ISECounts) {
			t.Fatalf("%s: wrong series length", algo)
		}
		// Area grows (weakly) with the ISE budget; so does reduction.
		for i := 1; i < len(ISECounts); i++ {
			if v.Area[algo][i] < v.Area[algo][i-1]-1e-9 {
				t.Errorf("%s: area dropped with more ISEs", algo)
			}
			if v.Reduction[algo][i] < v.Reduction[algo][i-1]-1e-9 {
				t.Errorf("%s: reduction dropped with more ISEs", algo)
			}
		}
	}
	// Fig. 5.2.3's observation: the first ISE dominates — going from 1 to 32
	// ISEs must gain less than the first ISE gains over zero.
	firstGain := v.Reduction[flow.MI][0]
	tailGain := v.Reduction[flow.MI][len(ISECounts)-1] - firstGain
	if firstGain <= 0 {
		t.Error("first ISE gains nothing")
	}
	if tailGain > firstGain {
		t.Errorf("tail ISEs (%v) dominate first ISE (%v); paper shows the opposite", tailGain, firstGain)
	}
}

func TestHeadlineShape(t *testing.T) {
	s := reducedSuite()
	h, err := s.RunHeadline()
	if err != nil {
		t.Fatal(err)
	}
	if h.OneISE.Avg <= 0 {
		t.Errorf("one-ISE average reduction %v, want positive", h.OneISE.Avg)
	}
	if h.OneISE.Max < h.OneISE.Avg || h.OneISE.Avg < h.OneISE.Min {
		t.Errorf("max/avg/min ordering broken: %+v", h.OneISE)
	}
	if h.VsSI.Avg < 0 {
		t.Errorf("MI loses to SI on average: %+v", h.VsSI)
	}
}

func TestRenderers(t *testing.T) {
	s := reducedSuite()
	var buf bytes.Buffer
	RenderTable511(&buf)
	if !strings.Contains(buf.String(), "84428") {
		t.Error("table missing mult area")
	}

	as, err := s.RunAreaSweep()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	as.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5.2.1") || !strings.Contains(buf.String(), "MI(4/2, 2IS, O0)") {
		t.Errorf("area sweep render:\n%s", buf.String())
	}

	cs, err := s.RunCountSweep()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	cs.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5.2.2") {
		t.Error("count sweep render missing title")
	}

	v, err := s.RunAreaVsTime()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	v.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5.2.3") {
		t.Error("area-vs-time render missing title")
	}

	h, err := s.RunHeadline()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	h.Render(&buf)
	if !strings.Contains(buf.String(), "one ISE vs no ISE") {
		t.Error("headline render missing")
	}
}

func TestBenchStats(t *testing.T) {
	stats, err := CollectBenchStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no stats")
	}
	for _, s := range stats {
		if s.StaticOps <= 0 || s.DynamicOps == 0 || s.Blocks == 0 {
			t.Errorf("%s/%s: degenerate stats %+v", s.Name, s.Opt, s)
		}
		if s.HotILP < 1 {
			t.Errorf("%s/%s: ILP %v below 1", s.Name, s.Opt, s.HotILP)
		}
		if s.HotEligible > s.HotOps {
			t.Errorf("%s/%s: eligible %d > ops %d", s.Name, s.Opt, s.HotEligible, s.HotOps)
		}
	}
	var buf bytes.Buffer
	if err := RenderBenchStats(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crc32") || !strings.Contains(buf.String(), "sha") {
		t.Error("stats table missing benchmarks")
	}
}

func TestCSVOutputs(t *testing.T) {
	s := reducedSuite()
	as, err := s.RunAreaSweep()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	as.CSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(as.Labels) {
		t.Fatalf("area CSV lines = %d, want %d", len(lines), 1+len(as.Labels))
	}
	if !strings.HasPrefix(lines[0], "config,area_20000") {
		t.Errorf("header = %q", lines[0])
	}
	// Quoted labels (they contain commas).
	if !strings.HasPrefix(lines[1], `"`) {
		t.Errorf("label not quoted: %q", lines[1])
	}

	cs, err := s.RunCountSweep()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	cs.CSV(&buf)
	if !strings.Contains(buf.String(), "ises_32") {
		t.Error("count CSV missing column")
	}

	v, err := s.RunAreaVsTime()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	v.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "ises,mi_area,si_area") {
		t.Error("area-vs-time CSV header wrong")
	}
}

func TestBreakdown(t *testing.T) {
	s := reducedSuite()
	b, err := s.RunBreakdown(s.Machines[0], "O3")
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []flow.Algorithm{flow.MI, flow.SI} {
		for _, name := range s.Benchmarks {
			rs := b.Reduction[algo][name]
			if len(rs) != len(ISECounts) {
				t.Fatalf("%s/%s: %d points", algo, name, len(rs))
			}
			// Greedy selection by gain is not the exploration's acceptance
			// order, so per-benchmark curves may dip slightly; only flag
			// substantial regressions.
			for i := 1; i < len(rs); i++ {
				if rs[i] < rs[i-1]-0.05 {
					t.Errorf("%s/%s: reduction dropped sharply with more ISEs: %v -> %v",
						algo, name, rs[i-1], rs[i])
				}
			}
		}
	}
	var buf bytes.Buffer
	b.Render(&buf, s.Benchmarks)
	if !strings.Contains(buf.String(), "crc32") || !strings.Contains(buf.String(), "MI") {
		t.Errorf("breakdown render:\n%s", buf.String())
	}
}

func TestSVGOutputs(t *testing.T) {
	s := reducedSuite()
	as, err := s.RunAreaSweep()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	as.SVG(&buf)
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("area sweep SVG not well-formed")
	}
	if !strings.Contains(out, "Figure 5.2.1") {
		t.Error("missing title")
	}
	if strings.Count(out, "<rect") < len(as.Labels)*len(as.Caps) {
		t.Errorf("too few bars: %d", strings.Count(out, "<rect"))
	}

	cs, err := s.RunCountSweep()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	cs.SVG(&buf)
	if !strings.Contains(buf.String(), "Figure 5.2.2") {
		t.Error("count sweep SVG missing title")
	}

	v, err := s.RunAreaVsTime()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	v.SVG(&buf)
	if !strings.Contains(buf.String(), "MI reduction") {
		t.Error("area-vs-time SVG missing legend")
	}
}
