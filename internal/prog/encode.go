package prog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Binary program format ("PISA"):
//
//	magic   uint32  'P','I','S','A'
//	version uint16
//	nameLen uint16, name bytes
//	nlabels uint32, then per label: pos uint32, len uint16, bytes
//	ninstr  uint32, then per instruction a fixed 16-byte record:
//	        op uint16, dst uint8, src1 uint8, src2 uint8, flags uint8,
//	        imm int32, target uint32 (label index+1, 0 = none)
//
// Encode/Decode round-trip exactly: labels, block structure and every
// operand are preserved.

const (
	binMagic   = 0x50495341 // "PISA"
	binVersion = 1
)

// Encode serializes the program to the binary format.
func Encode(p *Program) []byte {
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(binMagic))
	w(uint16(binVersion))
	w(uint16(len(p.Name)))
	buf.WriteString(p.Name)

	// Collect labels with their instruction positions and all instructions.
	type lbl struct {
		pos  uint32
		name string
	}
	var labels []lbl
	labelIdx := map[string]uint32{}
	var instrs []Instr
	pos := uint32(0)
	for _, b := range p.Blocks {
		if b.Label != "" {
			labelIdx[b.Label] = uint32(len(labels))
			labels = append(labels, lbl{pos, b.Label})
		}
		instrs = append(instrs, b.Instrs...)
		pos += uint32(len(b.Instrs))
	}
	w(uint32(len(labels)))
	for _, l := range labels {
		w(l.pos)
		w(uint16(len(l.name)))
		buf.WriteString(l.name)
	}
	w(uint32(len(instrs)))
	for _, in := range instrs {
		w(uint16(in.Op))
		w(uint8(in.Dst))
		w(uint8(in.Src1))
		w(uint8(in.Src2))
		w(uint8(0)) // flags, reserved
		w(in.Imm)
		if in.Target != "" {
			w(labelIdx[in.Target] + 1)
		} else {
			w(uint32(0))
		}
	}
	return buf.Bytes()
}

// Decode parses the binary format back into a program.
func Decode(data []byte) (*Program, error) {
	r := bytes.NewReader(data)
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	var magic uint32
	if err := rd(&magic); err != nil || magic != binMagic {
		return nil, fmt.Errorf("prog: bad magic")
	}
	var version uint16
	if err := rd(&version); err != nil || version != binVersion {
		return nil, fmt.Errorf("prog: unsupported version %d", version)
	}
	readStr := func(n int) (string, error) {
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	var nameLen uint16
	if err := rd(&nameLen); err != nil {
		return nil, fmt.Errorf("prog: truncated header")
	}
	name, err := readStr(int(nameLen))
	if err != nil {
		return nil, fmt.Errorf("prog: truncated name")
	}

	var nLabels uint32
	if err := rd(&nLabels); err != nil {
		return nil, fmt.Errorf("prog: truncated label table")
	}
	if nLabels > 1<<20 {
		return nil, fmt.Errorf("prog: implausible label count %d", nLabels)
	}
	labelAt := map[uint32][]string{}
	names := make([]string, nLabels)
	for i := uint32(0); i < nLabels; i++ {
		var pos uint32
		var ln uint16
		if err := rd(&pos); err != nil {
			return nil, fmt.Errorf("prog: truncated label")
		}
		if err := rd(&ln); err != nil {
			return nil, fmt.Errorf("prog: truncated label")
		}
		s, err := readStr(int(ln))
		if err != nil {
			return nil, fmt.Errorf("prog: truncated label name")
		}
		labelAt[pos] = append(labelAt[pos], s)
		names[i] = s
	}

	var nInstr uint32
	if err := rd(&nInstr); err != nil {
		return nil, fmt.Errorf("prog: truncated instruction count")
	}
	if nInstr > 1<<24 {
		return nil, fmt.Errorf("prog: implausible instruction count %d", nInstr)
	}
	b := NewBuilder(name)
	for i := uint32(0); i < nInstr; i++ {
		for _, l := range labelAt[i] {
			b.Label(l)
		}
		var rec struct {
			Op              uint16
			Dst, Src1, Src2 uint8
			Flags           uint8
			Imm             int32
			Target          uint32
		}
		if err := rd(&rec); err != nil {
			return nil, fmt.Errorf("prog: truncated instruction %d", i)
		}
		if int(rec.Op) >= isa.NumOpcodes {
			return nil, fmt.Errorf("prog: instruction %d: bad opcode %d", i, rec.Op)
		}
		in := Instr{
			Op:   isa.Opcode(rec.Op),
			Dst:  Reg(rec.Dst),
			Src1: Reg(rec.Src1),
			Src2: Reg(rec.Src2),
			Imm:  rec.Imm,
		}
		if rec.Target != 0 {
			if rec.Target > nLabels {
				return nil, fmt.Errorf("prog: instruction %d: bad target %d", i, rec.Target)
			}
			in.Target = names[rec.Target-1]
		}
		b.Emit(in)
	}
	return b.Build()
}
