package prog

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// BasicBlock is a maximal straight-line instruction sequence: control enters
// only at the first instruction and leaves only at the last.
type BasicBlock struct {
	Index  int    // position in Program.Blocks
	Label  string // entry label ("" for fall-through-only blocks)
	Instrs []Instr

	// Succs are indices of possible successor blocks in program order of
	// discovery: branch target first, then fall-through.
	Succs []int
}

// Terminator returns the final instruction and ok=false for an empty block.
func (b *BasicBlock) Terminator() (Instr, bool) {
	if len(b.Instrs) == 0 {
		return Instr{}, false
	}
	return b.Instrs[len(b.Instrs)-1], true
}

// Name returns a printable identifier for the block.
func (b *BasicBlock) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return fmt.Sprintf("bb%d", b.Index)
}

// Program is a complete PISA program: a list of basic blocks with CFG edges.
// Execution starts at Blocks[0].
type Program struct {
	Name    string
	Blocks  []*BasicBlock
	byLabel map[string]int
}

// BlockByLabel returns the index of the block with the given entry label,
// and ok=false if no such block exists.
func (p *Program) BlockByLabel(label string) (int, bool) {
	i, ok := p.byLabel[label]
	return i, ok
}

// NumInstrs returns the total static instruction count.
func (p *Program) NumInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Validate checks structural invariants: non-empty blocks, resolvable branch
// targets, successor indices in range, and branches only at block ends.
func (p *Program) Validate() error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("prog %s: no blocks", p.Name)
	}
	for _, b := range p.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("prog %s: block %s empty", p.Name, b.Name())
		}
		for i, in := range b.Instrs {
			if isa.IsBranch(in.Op) && i != len(b.Instrs)-1 {
				return fmt.Errorf("prog %s: block %s has branch %v mid-block", p.Name, b.Name(), in)
			}
			if in.Target != "" {
				if _, ok := p.byLabel[in.Target]; !ok {
					return fmt.Errorf("prog %s: undefined label %q", p.Name, in.Target)
				}
			}
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(p.Blocks) {
				return fmt.Errorf("prog %s: block %s successor %d out of range", p.Name, b.Name(), s)
			}
		}
	}
	return nil
}

// String renders the whole program as assembly text.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# program %s\n", p.Name)
	for _, b := range p.Blocks {
		if b.Label != "" {
			fmt.Fprintf(&sb, "%s:\n", b.Label)
		} else {
			fmt.Fprintf(&sb, "# %s\n", b.Name())
		}
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", in)
		}
	}
	return sb.String()
}
