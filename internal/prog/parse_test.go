package prog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestParseSimpleLoop(t *testing.T) {
	src := `
# count down from 10
    ori  $t0, $zero, 10
loop:
    addi $t0, $t0, -1
    bne  $t0, $zero, loop
    halt
`
	p, err := Parse("loop", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(p.Blocks))
	}
	if p.Blocks[1].Label != "loop" {
		t.Fatalf("label = %q", p.Blocks[1].Label)
	}
	if got := p.Blocks[1].Instrs[0].String(); got != "addi $t0, $t0, -1" {
		t.Fatalf("instr = %q", got)
	}
}

func TestParseEveryFormat(t *testing.T) {
	src := `
    add $t0, $t1, $t2
    addi $t0, $t1, -4
    sll $t0, $t1, 3
    lui $t0, 16
    lw $t0, 8($sp)
    sw $t0, 8($sp)
    lbu $t1, 0($t0)
    mult $t0, $t1
    mflo $t2
    mfhi $t3
    beq $t0, $t1, end
    blez $t0, end
    j end
end:
    halt
`
	p, err := Parse("fmt", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInstrs() != 14 {
		t.Fatalf("instrs = %d", p.NumInstrs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad mnemonic":  "frobnicate $t0, $t1, $t2\nhalt",
		"bad register":  "add $t0, $t1, $zz\nhalt",
		"bad immediate": "addi $t0, $t1, xyz\nhalt",
		"bad memory":    "lw $t0, 8$sp\nhalt",
		"arity":         "add $t0, $t1\nhalt",
		"bad label":     "my label:\nhalt",
		"undef target":  "j nowhere\nhalt",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse("e", src); err == nil {
				t.Fatalf("accepted %q", src)
			}
		})
	}
}

// TestParsePrintRoundTrip: parsing the printer's output reproduces the
// program exactly.
func TestParsePrintRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	b.LI(T0, 0xDEADBEEF)
	b.Label("loop")
	b.R(isa.OpADD, T1, T0, A0)
	b.Load(isa.OpLW, T2, SP, 4)
	b.Store(isa.OpSW, T2, SP, 8)
	b.Mult(isa.OpMULT, T1, T2)
	b.MoveFrom(isa.OpMFLO, T3)
	b.Branch(isa.OpBNE, T3, Zero, "loop")
	b.Branch1(isa.OpBGEZ, T3, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("rt", p.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	if p.String() != q.String() {
		t.Fatalf("round trip changed program:\n%s\nvs\n%s", p, q)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder("bin")
	b.LI(S0, 0x12345678)
	b.Label("top")
	b.R(isa.OpXOR, T0, S0, A0)
	b.I(isa.OpADDI, S0, S0, -1)
	b.Branch(isa.OpBNE, S0, Zero, "top")
	b.Jump("end")
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(p)
	q, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != q.String() {
		t.Fatalf("binary round trip changed program:\n%s\nvs\n%s", p, q)
	}
	if q.Name != "bin" {
		t.Fatalf("name = %q", q.Name)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a program")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty accepted")
	}
	// Truncations of a valid image must all fail cleanly.
	b := NewBuilder("x")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(p)
	for cut := 1; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestPropertyTextAndBinaryRoundTrips runs both round trips over random
// instruction streams.
func TestPropertyTextAndBinaryRoundTrips(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	regs := []Reg{Zero, T0, T1, T2, S0, A0, V0, SP}
	pick := func() Reg { return regs[r.Intn(len(regs))] }
	for trial := 0; trial < 60; trial++ {
		b := NewBuilder("rnd")
		n := 1 + r.Intn(25)
		b.Label("top")
		for i := 0; i < n; i++ {
			switch r.Intn(6) {
			case 0:
				b.R(isa.OpADD, pick(), pick(), pick())
			case 1:
				b.I(isa.OpXORI, pick(), pick(), int32(r.Intn(1000)))
			case 2:
				b.Load(isa.OpLW, pick(), SP, int32(4*r.Intn(8)))
			case 3:
				b.Store(isa.OpSB, pick(), SP, int32(r.Intn(32)))
			case 4:
				b.Mult(isa.OpMULTU, pick(), pick())
			case 5:
				b.I(isa.OpSRA, pick(), pick(), int32(r.Intn(31)))
			}
		}
		b.Branch(isa.OpBEQ, pick(), pick(), "top")
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		q, err := Parse("rnd", p.String())
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		if p.String() != q.String() {
			t.Fatalf("trial %d: text round trip diverged", trial)
		}
		d, err := Decode(Encode(p))
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if p.String() != d.String() {
			t.Fatalf("trial %d: binary round trip diverged", trial)
		}
	}
}

func TestParseIgnoresCommentsAndBlank(t *testing.T) {
	p, err := Parse("c", "# leading\n\n   # only comment\nhalt # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInstrs() != 1 {
		t.Fatalf("instrs = %d", p.NumInstrs())
	}
	if !strings.Contains(p.String(), "halt") {
		t.Fatal("halt lost")
	}
}
