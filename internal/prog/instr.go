// Package prog represents PISA programs: instructions over a MIPS-like
// register file, basic blocks, control-flow graphs, an assembler-style
// builder, and global liveness analysis. It is the bridge between the
// benchmark kernels (internal/bench), the profiler (internal/vm) and the
// dataflow-graph builder (internal/dfg).
package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Reg is a register number. 0..31 are the general-purpose registers
// ($zero..$ra); RegHILO is the pseudo register holding the 64-bit multiply
// result (HI:LO), written by mult/multu and read by mfhi/mflo.
type Reg int

// Register name constants in the standard MIPS convention.
const (
	Zero Reg = iota
	AT
	V0
	V1
	A0
	A1
	A2
	A3
	T0
	T1
	T2
	T3
	T4
	T5
	T6
	T7
	S0
	S1
	S2
	S3
	S4
	S5
	S6
	S7
	T8
	T9
	K0
	K1
	GP
	SP
	FP
	RA

	// RegHILO is the pseudo register modelling the HI:LO multiply result.
	RegHILO

	// NumRegs is the total register-file size including the HILO pseudo
	// register.
	NumRegs int = iota
)

var regNames = [...]string{
	"$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
	"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
	"$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
	"$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
	"$hilo",
}

// String returns the conventional register name.
func (r Reg) String() string {
	if r < 0 || int(r) >= len(regNames) {
		return fmt.Sprintf("$r%d", int(r))
	}
	return regNames[r]
}

// Instr is one PISA instruction. Field usage by format:
//
//	R-type:        Op Dst, Src1, Src2        (add $d, $s, $t)
//	I-type:        Op Dst, Src1, Imm         (addi $d, $s, imm; sll $d, $s, sh)
//	lui:           Op Dst, Imm
//	load:          Op Dst, Imm(Src1)
//	store:         Op Src2, Imm(Src1)        (value in Src2, base in Src1)
//	branch:        Op Src1, Src2, Target     (blez & friends use Src1 only)
//	j:             Op Target
//	mult/multu:    Op Src1, Src2             (defines RegHILO)
//	mfhi/mflo:     Op Dst                    (uses RegHILO)
//	halt:          Op
type Instr struct {
	Op     isa.Opcode
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Imm    int32
	Target string // branch/jump label
}

// Defs returns the register defined by the instruction, and ok=false if it
// defines none. Writes to $zero are discarded by the machine and reported as
// no definition.
func (in Instr) Defs() (Reg, bool) {
	switch {
	case in.Op == isa.OpMULT || in.Op == isa.OpMULTU:
		return RegHILO, true
	case isa.WritesRegister(in.Op) && in.Op != isa.OpHALT:
		if in.Dst == Zero {
			return 0, false
		}
		return in.Dst, true
	}
	return 0, false
}

// Uses returns the registers read by the instruction. $zero reads are
// included (they are real dataflow sources with constant value 0).
func (in Instr) Uses() []Reg {
	switch {
	case in.Op == isa.OpHALT || in.Op == isa.OpJ:
		return nil
	case in.Op == isa.OpLUI:
		return nil
	case in.Op == isa.OpMFHI || in.Op == isa.OpMFLO:
		return []Reg{RegHILO}
	case isa.IsLoad(in.Op):
		return []Reg{in.Src1}
	case isa.IsStore(in.Op):
		return []Reg{in.Src1, in.Src2}
	case in.Op == isa.OpBEQ || in.Op == isa.OpBNE:
		return []Reg{in.Src1, in.Src2}
	case in.Op == isa.OpBLEZ || in.Op == isa.OpBGTZ || in.Op == isa.OpBLTZ || in.Op == isa.OpBGEZ:
		return []Reg{in.Src1}
	case isa.HasImmediate(in.Op):
		return []Reg{in.Src1}
	default: // R-type
		return []Reg{in.Src1, in.Src2}
	}
}

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	op := in.Op
	switch {
	case op == isa.OpHALT:
		return "halt"
	case op == isa.OpJ:
		return fmt.Sprintf("j %s", in.Target)
	case op == isa.OpLUI:
		return fmt.Sprintf("lui %s, %d", in.Dst, in.Imm)
	case op == isa.OpMFHI || op == isa.OpMFLO:
		return fmt.Sprintf("%s %s", op, in.Dst)
	case op == isa.OpMULT || op == isa.OpMULTU:
		return fmt.Sprintf("%s %s, %s", op, in.Src1, in.Src2)
	case isa.IsLoad(op):
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Dst, in.Imm, in.Src1)
	case isa.IsStore(op):
		return fmt.Sprintf("%s %s, %d(%s)", op, in.Src2, in.Imm, in.Src1)
	case op == isa.OpBEQ || op == isa.OpBNE:
		return fmt.Sprintf("%s %s, %s, %s", op, in.Src1, in.Src2, in.Target)
	case op == isa.OpBLEZ || op == isa.OpBGTZ || op == isa.OpBLTZ || op == isa.OpBGEZ:
		return fmt.Sprintf("%s %s, %s", op, in.Src1, in.Target)
	case isa.HasImmediate(op):
		return fmt.Sprintf("%s %s, %s, %d", op, in.Dst, in.Src1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", op, in.Dst, in.Src1, in.Src2)
	}
}
