package prog

import (
	"testing"

	"repro/internal/isa"
)

// FuzzParse hardens the assembly parser: arbitrary text must either parse
// into a valid program or return an error — never panic — and successful
// parses must survive the print/parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"halt",
		"ori $t0, $zero, 10\nloop:\naddi $t0, $t0, -1\nbne $t0, $zero, loop\nhalt",
		"lw $t0, 8($sp)\nsw $t0, 12($sp)\nhalt",
		"mult $t0, $t1\nmflo $t2\nhalt",
		"# comment only\nhalt",
		"add $t0, $t1",            // arity error
		"j nowhere\nhalt",         // undefined label
		"label with spaces:\nj x", // bad label
		"lui $t0, 65535\nhalt",
		"beq $t0, $t1, x\nx:\nhalt",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse("fuzz", src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse returned invalid program: %v\n%s", verr, src)
		}
		q, err := Parse("fuzz", p.String())
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\n%s", err, p)
		}
		if p.String() != q.String() {
			t.Fatalf("round trip diverged:\n%s\nvs\n%s", p, q)
		}
	})
}

// FuzzDecode hardens the binary loader the same way.
func FuzzDecode(f *testing.F) {
	b := NewBuilder("seed")
	b.LI(T0, 0x12345678)
	b.Label("l")
	b.I(isa.OpADDIU, T0, T0, 1)
	b.Branch(isa.OpBNE, T0, Zero, "l")
	b.Halt()
	if p, err := b.Build(); err == nil {
		f.Add(Encode(p))
	}
	f.Add([]byte("PISA junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Decode returned invalid program: %v", verr)
		}
		// Decoded programs re-encode and re-decode stably.
		q, err := Decode(Encode(p))
		if err != nil || p.String() != q.String() {
			t.Fatalf("binary round trip unstable: %v", err)
		}
	})
}

func TestFuzzSeedsDirectly(t *testing.T) {
	// The fuzz seeds double as table tests under plain `go test`.
	valid := 0
	for _, src := range []string{
		"halt",
		"ori $t0, $zero, 10\nloop:\naddi $t0, $t0, -1\nbne $t0, $zero, loop\nhalt",
	} {
		if _, err := Parse("seed", src); err != nil {
			t.Errorf("seed failed: %v\n%s", err, src)
		} else {
			valid++
		}
	}
	if valid == 0 {
		t.Fatal("no valid seeds")
	}
}
