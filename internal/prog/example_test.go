package prog_test

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/vm"
)

// ExampleParse assembles a countdown loop from text and runs it.
func ExampleParse() {
	src := `
	    ori  $t0, $zero, 3
	loop:
	    addi $t0, $t0, -1
	    bne  $t0, $zero, loop
	    halt
	`
	p, err := prog.Parse("countdown", src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := vm.NewMachine(64)
	prof, err := m.Run(p, 1000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("blocks: %d, loop ran %d times\n", len(p.Blocks), prof.BlockCounts[1])
	// Output:
	// blocks: 3, loop ran 3 times
}

// ExampleBuilder shows the programmatic assembler.
func ExampleBuilder() {
	b := prog.NewBuilder("sum")
	b.I(isa.OpORI, prog.T0, prog.Zero, 10) // n = 10
	b.R(isa.OpADDU, prog.V0, prog.Zero, prog.Zero)
	b.Label("loop")
	b.R(isa.OpADDU, prog.V0, prog.V0, prog.T0) // sum += n
	b.I(isa.OpADDI, prog.T0, prog.T0, -1)
	b.Branch(isa.OpBNE, prog.T0, prog.Zero, "loop")
	b.Halt()
	p := b.MustBuild()

	m := vm.NewMachine(64)
	if _, err := m.Run(p, 1000); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("sum of 1..10 = %d\n", m.Reg(prog.V0))
	// Output:
	// sum of 1..10 = 55
}
