package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Builder assembles a Program from a linear instruction stream with symbolic
// labels, then splits it into basic blocks and resolves the control-flow
// graph. It plays the role of the assembler in the paper's toolchain.
type Builder struct {
	name   string
	instrs []Instr
	labels map[string]int // label -> index of first instruction after it
	errs   []error
}

// NewBuilder returns a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Label declares a label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.instrs)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instr) { b.instrs = append(b.instrs, in) }

// R emits a three-register instruction: op dst, src1, src2.
func (b *Builder) R(op isa.Opcode, dst, src1, src2 Reg) {
	b.Emit(Instr{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// I emits a register-immediate instruction: op dst, src1, imm. This covers
// both I-type ALU ops and immediate shifts.
func (b *Builder) I(op isa.Opcode, dst, src1 Reg, imm int32) {
	b.Emit(Instr{Op: op, Dst: dst, Src1: src1, Imm: imm})
}

// LUI emits lui dst, imm.
func (b *Builder) LUI(dst Reg, imm int32) {
	b.Emit(Instr{Op: isa.OpLUI, Dst: dst, Imm: imm})
}

// LI emits the canonical two-instruction 32-bit constant load
// (lui + ori) or a single ori when the constant fits in 16 bits unsigned.
func (b *Builder) LI(dst Reg, value uint32) {
	hi, lo := int32(value>>16), int32(value&0xffff)
	if hi == 0 {
		b.I(isa.OpORI, dst, Zero, lo)
		return
	}
	b.LUI(dst, hi)
	if lo != 0 {
		b.I(isa.OpORI, dst, dst, lo)
	}
}

// Load emits a memory load: op dst, off(base).
func (b *Builder) Load(op isa.Opcode, dst, base Reg, off int32) {
	if !isa.IsLoad(op) {
		b.errs = append(b.errs, fmt.Errorf("Load with non-load opcode %v", op))
		return
	}
	b.Emit(Instr{Op: op, Dst: dst, Src1: base, Imm: off})
}

// Store emits a memory store: op value, off(base).
func (b *Builder) Store(op isa.Opcode, value, base Reg, off int32) {
	if !isa.IsStore(op) {
		b.errs = append(b.errs, fmt.Errorf("Store with non-store opcode %v", op))
		return
	}
	b.Emit(Instr{Op: op, Src1: base, Src2: value, Imm: off})
}

// Branch emits a two-register conditional branch: op src1, src2, target.
func (b *Builder) Branch(op isa.Opcode, src1, src2 Reg, target string) {
	b.Emit(Instr{Op: op, Src1: src1, Src2: src2, Target: target})
}

// Branch1 emits a one-register conditional branch: op src1, target.
func (b *Builder) Branch1(op isa.Opcode, src1 Reg, target string) {
	b.Emit(Instr{Op: op, Src1: src1, Target: target})
}

// Jump emits an unconditional jump to target.
func (b *Builder) Jump(target string) {
	b.Emit(Instr{Op: isa.OpJ, Target: target})
}

// Mult emits mult/multu src1, src2 (result in HILO).
func (b *Builder) Mult(op isa.Opcode, src1, src2 Reg) {
	b.Emit(Instr{Op: op, Src1: src1, Src2: src2})
}

// MoveFrom emits mfhi/mflo dst.
func (b *Builder) MoveFrom(op isa.Opcode, dst Reg) {
	b.Emit(Instr{Op: op, Dst: dst})
}

// Halt emits the program-terminating instruction.
func (b *Builder) Halt() { b.Emit(Instr{Op: isa.OpHALT}) }

// Build splits the stream into basic blocks, resolves branch targets and
// builds CFG successor edges. Leaders are: the first instruction, every
// labelled instruction, and every instruction following a branch.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.instrs) == 0 {
		return nil, fmt.Errorf("prog %s: empty program", b.name)
	}
	if last := b.instrs[len(b.instrs)-1]; !isa.IsBranch(last.Op) {
		return nil, fmt.Errorf("prog %s: program must end with a control instruction, got %v", b.name, last)
	}
	for label, pos := range b.labels {
		if pos >= len(b.instrs) {
			return nil, fmt.Errorf("prog %s: label %q at end of program", b.name, label)
		}
	}

	leader := make([]bool, len(b.instrs))
	leader[0] = true
	for _, pos := range b.labels {
		leader[pos] = true
	}
	for i, in := range b.instrs {
		if isa.IsBranch(in.Op) && i+1 < len(b.instrs) {
			leader[i+1] = true
		}
	}

	p := &Program{Name: b.name, byLabel: make(map[string]int)}
	labelAt := make(map[int]string)
	for label, pos := range b.labels {
		// Multiple labels at one position would have been caught as
		// duplicates only if identical; allow at most one label per leader.
		if prev, dup := labelAt[pos]; dup {
			return nil, fmt.Errorf("prog %s: labels %q and %q at same position", b.name, prev, label)
		}
		labelAt[pos] = label
	}

	instrBlock := make([]int, len(b.instrs)) // instruction index -> block index
	var cur *BasicBlock
	for i, in := range b.instrs {
		if leader[i] {
			cur = &BasicBlock{Index: len(p.Blocks), Label: labelAt[i]}
			p.Blocks = append(p.Blocks, cur)
			if cur.Label != "" {
				p.byLabel[cur.Label] = cur.Index
			}
		}
		cur.Instrs = append(cur.Instrs, in)
		instrBlock[i] = cur.Index
	}

	// CFG edges.
	for bi, blk := range p.Blocks {
		term, _ := blk.Terminator()
		switch {
		case term.Op == isa.OpHALT:
			// no successors
		case term.Op == isa.OpJ:
			ti, ok := b.labels[term.Target]
			if !ok {
				return nil, fmt.Errorf("prog %s: undefined label %q", b.name, term.Target)
			}
			blk.Succs = []int{instrBlock[ti]}
		case isa.IsBranch(term.Op):
			ti, ok := b.labels[term.Target]
			if !ok {
				return nil, fmt.Errorf("prog %s: undefined label %q", b.name, term.Target)
			}
			blk.Succs = []int{instrBlock[ti]}
			if bi+1 < len(p.Blocks) {
				blk.Succs = append(blk.Succs, bi+1)
			} else {
				return nil, fmt.Errorf("prog %s: conditional branch at end of program", b.name)
			}
		default:
			// Fall-through only.
			if bi+1 >= len(p.Blocks) {
				return nil, fmt.Errorf("prog %s: control falls off the end", b.name)
			}
			blk.Succs = []int{bi + 1}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; intended for the static benchmark
// kernels whose assembly is fixed at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
