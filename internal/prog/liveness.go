package prog

// Liveness holds per-block live-in/live-out register sets computed by a
// standard iterative backward dataflow analysis. The DFG builder uses
// live-out sets to decide which basic-block values are outputs of a
// candidate ISE subgraph.
type Liveness struct {
	LiveIn  []RegSet // indexed by block
	LiveOut []RegSet
}

// RegSet is a bitmask over the register file (including the HILO pseudo
// register).
type RegSet uint64

// Add returns the set with r included.
func (s RegSet) Add(r Reg) RegSet { return s | 1<<uint(r) }

// Remove returns the set with r excluded.
func (s RegSet) Remove(r Reg) RegSet { return s &^ (1 << uint(r)) }

// Contains reports membership of r.
func (s RegSet) Contains(r Reg) bool { return s&(1<<uint(r)) != 0 }

// Union returns the union of two sets.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Regs returns the members in increasing order.
func (s RegSet) Regs() []Reg {
	var out []Reg
	for r := Reg(0); int(r) < NumRegs; r++ {
		if s.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

// useDef returns the upward-exposed uses and the defs of a block.
func useDef(b *BasicBlock) (use, def RegSet) {
	for _, in := range b.Instrs {
		for _, r := range in.Uses() {
			if !def.Contains(r) && r != Zero {
				use = use.Add(r)
			}
		}
		if d, ok := in.Defs(); ok {
			def = def.Add(d)
		}
	}
	return use, def
}

// ComputeLiveness runs iterative backward liveness over the program's CFG.
func ComputeLiveness(p *Program) *Liveness {
	n := len(p.Blocks)
	lv := &Liveness{LiveIn: make([]RegSet, n), LiveOut: make([]RegSet, n)}
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for i, b := range p.Blocks {
		use[i], def[i] = useDef(b)
	}
	for changed := true; changed; {
		changed = false
		// Backward order converges quickly on reducible CFGs.
		for i := n - 1; i >= 0; i-- {
			var out RegSet
			for _, s := range p.Blocks[i].Succs {
				out = out.Union(lv.LiveIn[s])
			}
			in := use[i].Union(out &^ def[i])
			if out != lv.LiveOut[i] || in != lv.LiveIn[i] {
				lv.LiveOut[i] = out
				lv.LiveIn[i] = in
				changed = true
			}
		}
	}
	return lv
}
