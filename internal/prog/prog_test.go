package prog

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{Zero: "$zero", T0: "$t0", S7: "$s7", RA: "$ra", RegHILO: "$hilo"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(r), got, want)
		}
	}
	if got := Reg(99).String(); got != "$r99" {
		t.Errorf("out-of-range reg String = %q", got)
	}
}

func TestInstrDefsUses(t *testing.T) {
	cases := []struct {
		in      Instr
		wantDef Reg
		hasDef  bool
		wantUse []Reg
	}{
		{Instr{Op: isa.OpADD, Dst: T0, Src1: T1, Src2: T2}, T0, true, []Reg{T1, T2}},
		{Instr{Op: isa.OpADDI, Dst: T0, Src1: T1, Imm: 4}, T0, true, []Reg{T1}},
		{Instr{Op: isa.OpSLL, Dst: T0, Src1: T1, Imm: 2}, T0, true, []Reg{T1}},
		{Instr{Op: isa.OpLUI, Dst: T0, Imm: 1}, T0, true, nil},
		{Instr{Op: isa.OpLW, Dst: T0, Src1: SP, Imm: 8}, T0, true, []Reg{SP}},
		{Instr{Op: isa.OpSW, Src1: SP, Src2: T0, Imm: 8}, 0, false, []Reg{SP, T0}},
		{Instr{Op: isa.OpBEQ, Src1: T0, Src2: T1, Target: "x"}, 0, false, []Reg{T0, T1}},
		{Instr{Op: isa.OpBLEZ, Src1: T0, Target: "x"}, 0, false, []Reg{T0}},
		{Instr{Op: isa.OpJ, Target: "x"}, 0, false, nil},
		{Instr{Op: isa.OpMULT, Src1: T0, Src2: T1}, RegHILO, true, []Reg{T0, T1}},
		{Instr{Op: isa.OpMFLO, Dst: T2}, T2, true, []Reg{RegHILO}},
		{Instr{Op: isa.OpHALT}, 0, false, nil},
		// Writes to $zero are discarded.
		{Instr{Op: isa.OpADD, Dst: Zero, Src1: T1, Src2: T2}, 0, false, []Reg{T1, T2}},
	}
	for _, c := range cases {
		d, ok := c.in.Defs()
		if ok != c.hasDef || (ok && d != c.wantDef) {
			t.Errorf("%v: Defs() = (%v,%v), want (%v,%v)", c.in, d, ok, c.wantDef, c.hasDef)
		}
		if got := c.in.Uses(); !reflect.DeepEqual(got, c.wantUse) {
			t.Errorf("%v: Uses() = %v, want %v", c.in, got, c.wantUse)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: isa.OpADD, Dst: T0, Src1: T1, Src2: T2}, "add $t0, $t1, $t2"},
		{Instr{Op: isa.OpADDI, Dst: T0, Src1: T1, Imm: -4}, "addi $t0, $t1, -4"},
		{Instr{Op: isa.OpLW, Dst: T0, Src1: SP, Imm: 8}, "lw $t0, 8($sp)"},
		{Instr{Op: isa.OpSW, Src1: SP, Src2: T0, Imm: 8}, "sw $t0, 8($sp)"},
		{Instr{Op: isa.OpBNE, Src1: T0, Src2: Zero, Target: "loop"}, "bne $t0, $zero, loop"},
		{Instr{Op: isa.OpBLEZ, Src1: T0, Target: "end"}, "blez $t0, end"},
		{Instr{Op: isa.OpJ, Target: "loop"}, "j loop"},
		{Instr{Op: isa.OpMULT, Src1: T0, Src2: T1}, "mult $t0, $t1"},
		{Instr{Op: isa.OpMFHI, Dst: T0}, "mfhi $t0"},
		{Instr{Op: isa.OpLUI, Dst: T0, Imm: 16}, "lui $t0, 16"},
		{Instr{Op: isa.OpHALT}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

// buildLoop assembles a canonical count-down loop:
//
//	    ori  $t0, $zero, 10
//	loop:
//	    addi $t0, $t0, -1
//	    bne  $t0, $zero, loop
//	    halt
func buildLoop(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("loop")
	b.I(isa.OpORI, T0, Zero, 10)
	b.Label("loop")
	b.I(isa.OpADDI, T0, T0, -1)
	b.Branch(isa.OpBNE, T0, Zero, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderSplitsBlocks(t *testing.T) {
	p := buildLoop(t)
	if len(p.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3:\n%s", len(p.Blocks), p)
	}
	if p.Blocks[1].Label != "loop" {
		t.Errorf("block 1 label = %q, want loop", p.Blocks[1].Label)
	}
	// CFG: bb0 -> bb1; bb1 -> {bb1, bb2}; bb2 -> {}.
	if !reflect.DeepEqual(p.Blocks[0].Succs, []int{1}) {
		t.Errorf("bb0 succs = %v", p.Blocks[0].Succs)
	}
	if !reflect.DeepEqual(p.Blocks[1].Succs, []int{1, 2}) {
		t.Errorf("bb1 succs = %v", p.Blocks[1].Succs)
	}
	if len(p.Blocks[2].Succs) != 0 {
		t.Errorf("bb2 succs = %v", p.Blocks[2].Succs)
	}
	if idx, ok := p.BlockByLabel("loop"); !ok || idx != 1 {
		t.Errorf("BlockByLabel(loop) = %d,%v", idx, ok)
	}
	if p.NumInstrs() != 4 {
		t.Errorf("NumInstrs = %d, want 4", p.NumInstrs())
	}
}

func TestBuilderJumpEdges(t *testing.T) {
	b := NewBuilder("jmp")
	b.Label("top")
	b.I(isa.OpADDI, T0, T0, 1)
	b.Jump("top")
	b.Label("dead")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Blocks[0].Succs, []int{0}) {
		t.Errorf("jump block succs = %v, want [0]", p.Blocks[0].Succs)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := NewBuilder("e").Build(); err == nil {
			t.Fatal("no error for empty program")
		}
	})
	t.Run("no terminator", func(t *testing.T) {
		b := NewBuilder("e")
		b.R(isa.OpADD, T0, T1, T2)
		if _, err := b.Build(); err == nil {
			t.Fatal("no error for missing terminator")
		}
	})
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder("e")
		b.Jump("nowhere")
		if _, err := b.Build(); err == nil {
			t.Fatal("no error for undefined label")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder("e")
		b.Label("x")
		b.Label("x")
		b.Halt()
		if _, err := b.Build(); err == nil {
			t.Fatal("no error for duplicate label")
		}
	})
	t.Run("conditional at end", func(t *testing.T) {
		b := NewBuilder("e")
		b.Label("x")
		b.Branch(isa.OpBEQ, T0, T1, "x")
		if _, err := b.Build(); err == nil {
			t.Fatal("no error for conditional branch at program end")
		}
	})
	t.Run("load with bad opcode", func(t *testing.T) {
		b := NewBuilder("e")
		b.Load(isa.OpADD, T0, T1, 0)
		b.Halt()
		if _, err := b.Build(); err == nil {
			t.Fatal("no error for Load with non-load opcode")
		}
	})
	t.Run("store with bad opcode", func(t *testing.T) {
		b := NewBuilder("e")
		b.Store(isa.OpADD, T0, T1, 0)
		b.Halt()
		if _, err := b.Build(); err == nil {
			t.Fatal("no error for Store with non-store opcode")
		}
	})
	t.Run("label at end", func(t *testing.T) {
		b := NewBuilder("e")
		b.Halt()
		b.Label("x")
		if _, err := b.Build(); err == nil {
			t.Fatal("no error for label at end of program")
		}
	})
}

func TestLI(t *testing.T) {
	b := NewBuilder("li")
	b.LI(T0, 0x12345678)
	b.LI(T1, 0x0000ffff)
	b.LI(T2, 0xffff0000)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got := p.Blocks[0].Instrs
	want := []string{
		"lui $t0, 4660",
		"ori $t0, $t0, 22136",
		"ori $t1, $zero, 65535",
		"lui $t2, 65535",
		"halt",
	}
	if len(got) != len(want) {
		t.Fatalf("LI expansion:\n%s", p)
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("instr %d = %q, want %q", i, got[i].String(), want[i])
		}
	}
}

func TestProgramString(t *testing.T) {
	p := buildLoop(t)
	s := p.String()
	for _, frag := range []string{"loop:", "addi $t0, $t0, -1", "bne $t0, $zero, loop", "halt"} {
		if !strings.Contains(s, frag) {
			t.Errorf("program text missing %q:\n%s", frag, s)
		}
	}
}

func TestLivenessLoop(t *testing.T) {
	p := buildLoop(t)
	lv := ComputeLiveness(p)
	// $t0 is live around the loop: live-out of bb0 and bb1, live-in of bb1.
	if !lv.LiveOut[0].Contains(T0) {
		t.Error("$t0 not live-out of bb0")
	}
	if !lv.LiveIn[1].Contains(T0) {
		t.Error("$t0 not live-in of bb1")
	}
	if !lv.LiveOut[1].Contains(T0) {
		t.Error("$t0 not live-out of bb1 (loop back edge)")
	}
	// Nothing is live out of the halt block.
	if lv.LiveOut[2] != 0 {
		t.Errorf("live-out of exit block = %v", lv.LiveOut[2].Regs())
	}
	// $zero is never recorded as live.
	if lv.LiveIn[1].Contains(Zero) {
		t.Error("$zero recorded live")
	}
}

func TestLivenessHILO(t *testing.T) {
	// mult in bb0, mflo in a later block: HILO must be live across.
	b := NewBuilder("hilo")
	b.Mult(isa.OpMULT, T0, T1)
	b.Label("next")
	b.MoveFrom(isa.OpMFLO, T2)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(p)
	if !lv.LiveOut[0].Contains(RegHILO) {
		t.Error("HILO not live-out of mult block")
	}
	if !lv.LiveIn[1].Contains(RegHILO) {
		t.Error("HILO not live-in of mflo block")
	}
}

func TestLivenessDiamond(t *testing.T) {
	// A value defined before a diamond and used on only one side is live-in
	// to the join only if used after it; here $t3 is used on the left side
	// only.
	b := NewBuilder("diamond")
	b.I(isa.OpORI, T3, Zero, 7)
	b.Branch(isa.OpBEQ, T0, Zero, "right")
	// left (fall-through)
	b.R(isa.OpADD, T4, T3, T3)
	b.Jump("join")
	b.Label("right")
	b.I(isa.OpORI, T4, Zero, 1)
	b.Label("join")
	b.R(isa.OpADD, V0, T4, Zero)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(p)
	leftIdx, _ := 1, 0
	// $t3 live into the left block.
	if !lv.LiveIn[leftIdx].Contains(T3) {
		t.Error("$t3 not live-in of left branch")
	}
	joinIdx, ok := p.BlockByLabel("join")
	if !ok {
		t.Fatal("no join block")
	}
	if lv.LiveIn[joinIdx].Contains(T3) {
		t.Error("$t3 wrongly live-in of join")
	}
	if !lv.LiveIn[joinIdx].Contains(T4) {
		t.Error("$t4 not live-in of join")
	}
}

func TestRegSetOps(t *testing.T) {
	var s RegSet
	s = s.Add(T0).Add(RegHILO)
	if !s.Contains(T0) || !s.Contains(RegHILO) || s.Contains(T1) {
		t.Fatal("RegSet membership wrong")
	}
	s = s.Remove(T0)
	if s.Contains(T0) {
		t.Fatal("Remove failed")
	}
	if got := s.Add(T1).Regs(); !reflect.DeepEqual(got, []Reg{T1, RegHILO}) {
		t.Fatalf("Regs() = %v", got)
	}
}
