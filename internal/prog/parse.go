package prog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Parse assembles PISA source text in the same syntax Program.String emits:
// one instruction per line, optional "label:" lines, and '#' comments.
// Example:
//
//	# program crc
//	    ori  $t0, $zero, 10
//	loop:
//	    addi $t0, $t0, -1
//	    bne  $t0, $zero, loop
//	    halt
func Parse(name, src string) (*Program, error) {
	b := NewBuilder(name)
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if label == "" || strings.ContainsAny(label, " \t,") {
				return nil, fmt.Errorf("prog: line %d: bad label %q", ln+1, label)
			}
			b.Label(label)
			continue
		}
		in, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("prog: line %d: %w", ln+1, err)
		}
		b.Emit(in)
	}
	return b.Build()
}

// opByName maps mnemonics to opcodes.
var opByName = func() map[string]isa.Opcode {
	m := make(map[string]isa.Opcode, isa.NumOpcodes)
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

// regByName maps register names to numbers.
var regByName = func() map[string]Reg {
	m := make(map[string]Reg, NumRegs)
	for r := Reg(0); int(r) < NumRegs; r++ {
		m[r.String()] = r
	}
	return m
}()

func parseReg(tok string) (Reg, error) {
	r, ok := regByName[strings.TrimSpace(tok)]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", tok)
	}
	return r, nil
}

func parseImm(tok string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(tok), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	if v < -(1<<31) || v > (1<<31)-1 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return int32(v), nil
}

// parseMem splits "off($base)".
func parseMem(tok string) (off int32, base Reg, err error) {
	tok = strings.TrimSpace(tok)
	open := strings.IndexByte(tok, '(')
	if open < 0 || !strings.HasSuffix(tok, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	off, err = parseImm(tok[:open])
	if err != nil {
		return 0, 0, err
	}
	base, err = parseReg(tok[open+1 : len(tok)-1])
	return off, base, err
}

func parseInstr(line string) (Instr, error) {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.TrimSpace(fields[0])
	op, ok := opByName[mnemonic]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	switch {
	case op == isa.OpHALT:
		return Instr{Op: op}, need(0)
	case op == isa.OpJ:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Target: args[0]}, nil
	case op == isa.OpLUI:
		if err := need(2); err != nil {
			return Instr{}, err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Dst: dst, Imm: imm}, nil
	case op == isa.OpMFHI || op == isa.OpMFLO:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Dst: dst}, nil
	case op == isa.OpMULT || op == isa.OpMULTU:
		if err := need(2); err != nil {
			return Instr{}, err
		}
		s1, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		s2, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Src1: s1, Src2: s2}, nil
	case isa.IsLoad(op):
		if err := need(2); err != nil {
			return Instr{}, err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		off, base, err := parseMem(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Dst: dst, Src1: base, Imm: off}, nil
	case isa.IsStore(op):
		if err := need(2); err != nil {
			return Instr{}, err
		}
		val, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		off, base, err := parseMem(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Src1: base, Src2: val, Imm: off}, nil
	case op == isa.OpBEQ || op == isa.OpBNE:
		if err := need(3); err != nil {
			return Instr{}, err
		}
		s1, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		s2, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Src1: s1, Src2: s2, Target: args[2]}, nil
	case isa.IsBranch(op): // single-register branches
		if err := need(2); err != nil {
			return Instr{}, err
		}
		s1, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Src1: s1, Target: args[1]}, nil
	case isa.HasImmediate(op):
		if err := need(3); err != nil {
			return Instr{}, err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Dst: dst, Src1: s1, Imm: imm}, nil
	default: // R-type
		if err := need(3); err != nil {
			return Instr{}, err
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return Instr{}, err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return Instr{}, err
		}
		s2, err := parseReg(args[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Dst: dst, Src1: s1, Src2: s2}, nil
	}
}
