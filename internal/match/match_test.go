package match

import (
	"testing"

	"repro/internal/dfg"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/prog"
)

func blockDFG(t *testing.T, emit func(b *prog.Builder)) *dfg.DFG {
	t.Helper()
	b := prog.NewBuilder("t")
	emit(b)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lv := prog.ComputeLiveness(p)
	return dfg.Build(p, 0, 1, lv.LiveOut[0])
}

// crcStep emits the and/sub/srl/and/xor CRC bit-step once per call.
func crcStep(b *prog.Builder, crc, poly prog.Reg) {
	b.I(isa.OpANDI, prog.T1, crc, 1)
	b.R(isa.OpSUB, prog.T2, prog.Zero, prog.T1)
	b.I(isa.OpSRL, prog.T3, crc, 1)
	b.R(isa.OpAND, prog.T2, poly, prog.T2)
	b.R(isa.OpXOR, crc, prog.T3, prog.T2)
}

func TestFindSelfMatch(t *testing.T) {
	d := blockDFG(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
		b.R(isa.OpXOR, prog.T1, prog.T0, prog.A0)
	})
	pat := graph.NodeSetOf(d.Len(), 0, 1)
	ms := Find(d, pat, d, 0)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1 (self)", len(ms))
	}
	if ms[0][0] != 0 || ms[0][1] != 1 {
		t.Fatalf("mapping %v", ms[0])
	}
}

func TestFindRepeatedPattern(t *testing.T) {
	// The CRC bit-step appears 4 times in an unrolled block; the pattern
	// from the first instance must match all four.
	d := blockDFG(t, func(b *prog.Builder) {
		for i := 0; i < 4; i++ {
			crcStep(b, prog.S3, prog.S2)
		}
	})
	pat := graph.NodeSetOf(d.Len(), 0, 1, 2, 3, 4)
	ms := Find(d, pat, d, 0)
	if len(ms) != 4 {
		t.Fatalf("got %d matches, want 4", len(ms))
	}
	// Matches must be vertical copies: each maps the 5 pattern nodes onto a
	// contiguous 5-node instance.
	seen := map[int]bool{}
	for _, m := range ms {
		base := m[0] // instance offset of the andi node
		if base%5 != 0 {
			t.Errorf("instance base %d not aligned", base)
		}
		if seen[base] {
			t.Errorf("duplicate instance at %d", base)
		}
		seen[base] = true
		for p, tgt := range m {
			if tgt != base+p {
				t.Errorf("node %d mapped to %d, want %d", p, tgt, base+p)
			}
		}
	}
}

func TestFindRespectsOpcodes(t *testing.T) {
	d := blockDFG(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
		b.R(isa.OpXOR, prog.T1, prog.T0, prog.A0) // pattern: add->xor
		b.R(isa.OpADD, prog.T2, prog.A2, prog.A3)
		b.R(isa.OpOR, prog.T3, prog.T2, prog.A2) // decoy: add->or
	})
	pat := graph.NodeSetOf(d.Len(), 0, 1)
	ms := Find(d, pat, d, 0)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1 (or-decoy must not match)", len(ms))
	}
}

func TestFindRequiresInducedEdges(t *testing.T) {
	// Pattern: two independent adds. A dependent add pair must not match.
	d := blockDFG(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1) // n0
		b.R(isa.OpADD, prog.T1, prog.A2, prog.A3) // n1 independent of n0
		b.R(isa.OpADD, prog.T2, prog.A0, prog.A1) // n2
		b.R(isa.OpADD, prog.T3, prog.T2, prog.A3) // n3 depends on n2
	})
	pat := graph.NodeSetOf(d.Len(), 0, 1)
	for _, m := range Find(d, pat, d, 0) {
		a, b := m[0], m[1]
		if d.Data.HasEdge(a, b) || d.Data.HasEdge(b, a) {
			t.Errorf("independent pattern matched dependent nodes %d,%d", a, b)
		}
	}
	// Pattern: the dependent pair. It must match only {2,3}.
	dep := graph.NodeSetOf(d.Len(), 2, 3)
	ms := Find(d, dep, d, 0)
	if len(ms) != 1 || ms[0][2] != 2 || ms[0][3] != 3 {
		t.Fatalf("dependent pattern matches = %v", ms)
	}
}

func TestFindMaxMatches(t *testing.T) {
	d := blockDFG(t, func(b *prog.Builder) {
		for i := 0; i < 6; i++ {
			b.R(isa.OpADD, prog.T0+prog.Reg(i), prog.A0, prog.A1)
		}
	})
	pat := graph.NodeSetOf(d.Len(), 0)
	ms := Find(d, pat, d, 2)
	if len(ms) != 2 {
		t.Fatalf("maxMatches ignored: %d", len(ms))
	}
}

func TestFindCrossDFG(t *testing.T) {
	pd := blockDFG(t, func(b *prog.Builder) {
		crcStep(b, prog.S3, prog.S2)
	})
	td := blockDFG(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T5, prog.A0, prog.A1) // noise
		crcStep(b, prog.S4, prog.S5)              // the instance
		b.R(isa.OpOR, prog.T6, prog.T5, prog.A0)  // noise
	})
	pat := graph.NodeSetOf(pd.Len(), 0, 1, 2, 3, 4)
	ms := Find(pd, pat, td, 0)
	if len(ms) != 1 {
		t.Fatalf("cross-DFG matches = %d, want 1", len(ms))
	}
}

func TestFindNoCandidates(t *testing.T) {
	pd := blockDFG(t, func(b *prog.Builder) {
		b.Mult(isa.OpMULT, prog.A0, prog.A1)
	})
	td := blockDFG(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
	})
	if ms := Find(pd, graph.NodeSetOf(pd.Len(), 0), td, 0); ms != nil {
		t.Fatalf("matches without candidates: %v", ms)
	}
	if ms := Find(pd, graph.NewNodeSet(pd.Len()), td, 0); ms != nil {
		t.Fatalf("matches for empty pattern: %v", ms)
	}
}

func TestMappingHelpers(t *testing.T) {
	m := Mapping{0: 5, 1: 7}
	ts := m.Targets(10)
	if !ts.Contains(5) || !ts.Contains(7) || ts.Len() != 2 {
		t.Fatalf("Targets = %v", ts)
	}
	if !m.Overlaps(graph.NodeSetOf(10, 7)) {
		t.Error("Overlaps false negative")
	}
	if m.Overlaps(graph.NodeSetOf(10, 6)) {
		t.Error("Overlaps false positive")
	}
}

func TestCanonicalDistinguishesStructure(t *testing.T) {
	d := blockDFG(t, func(b *prog.Builder) {
		// chain add->xor
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
		b.R(isa.OpXOR, prog.T1, prog.T0, prog.A0)
		// independent add, xor
		b.R(isa.OpADD, prog.T2, prog.A2, prog.A3)
		b.R(isa.OpXOR, prog.T3, prog.A2, prog.A3)
		// another chain add->xor (identical to first)
		b.R(isa.OpADD, prog.T4, prog.A0, prog.A1)
		b.R(isa.OpXOR, prog.T5, prog.T4, prog.A0)
	})
	chain1 := Canonical(d, graph.NodeSetOf(d.Len(), 0, 1))
	indep := Canonical(d, graph.NodeSetOf(d.Len(), 2, 3))
	chain2 := Canonical(d, graph.NodeSetOf(d.Len(), 4, 5))
	if chain1 != chain2 {
		t.Error("identical structures hash differently")
	}
	if chain1 == indep {
		t.Error("chain and independent pair hash identically")
	}
}
