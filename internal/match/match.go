// Package match implements labeled subgraph isomorphism over dataflow
// graphs. Both ISE merging (is candidate B a subgraph of candidate A?) and
// ISE replacement (where else in the program does a selected ISE's pattern
// occur?) reduce to this search. Patterns are node subsets of a DFG labeled
// by opcode; a match is an injective mapping preserving labels and inducing
// exactly the pattern's internal dataflow edges.
package match

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dfg"
	"repro/internal/graph"
)

// Mapping maps pattern node IDs to target node IDs.
type Mapping map[int]int

// DefaultLimit bounds the number of search states explored per Find call;
// pathological patterns give up rather than stall the flow.
const DefaultLimit = 200000

// Find returns up to maxMatches injective mappings of the pattern subset
// pNodes of pd onto nodes of td such that opcodes agree and the induced
// dataflow edges are identical. Candidate target nodes are restricted to
// ISE-eligible operations. maxMatches <= 0 means unlimited.
func Find(pd *dfg.DFG, pNodes graph.NodeSet, td *dfg.DFG, maxMatches int) []Mapping {
	pids := pNodes.Values()
	if len(pids) == 0 {
		return nil
	}
	// Candidate lists per pattern node, by opcode.
	cands := make(map[int][]int, len(pids))
	for _, p := range pids {
		op := pd.Nodes[p].Instr.Op
		var cs []int
		for t := 0; t < td.Len(); t++ {
			if td.Nodes[t].Instr.Op == op && td.Nodes[t].ISEEligible() {
				cs = append(cs, t)
			}
		}
		if len(cs) == 0 {
			return nil
		}
		cands[p] = cs
	}
	// Order pattern nodes most-constrained first: fewest candidates, then
	// most internal adjacency.
	order := append([]int(nil), pids...)
	adj := func(p int) int {
		n := 0
		for _, q := range pd.Data.Succs(p) {
			if pNodes.Contains(q) {
				n++
			}
		}
		for _, q := range pd.Data.Preds(p) {
			if pNodes.Contains(q) {
				n++
			}
		}
		return n
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if len(cands[a]) != len(cands[b]) {
			return len(cands[a]) < len(cands[b])
		}
		if adj(a) != adj(b) {
			return adj(a) > adj(b)
		}
		return a < b
	})

	s := &searcher{
		pd: pd, td: td, pNodes: pNodes,
		order: order, cands: cands,
		mapping: Mapping{}, usedT: map[int]bool{},
		max: maxMatches, budget: DefaultLimit,
	}
	s.search(0)
	return s.found
}

type searcher struct {
	pd, td  *dfg.DFG
	pNodes  graph.NodeSet
	order   []int
	cands   map[int][]int
	mapping Mapping
	usedT   map[int]bool
	found   []Mapping
	max     int
	budget  int
}

func (s *searcher) search(depth int) bool {
	if s.budget <= 0 {
		return true // out of budget: stop the whole search
	}
	s.budget--
	if depth == len(s.order) {
		m := make(Mapping, len(s.mapping))
		for k, v := range s.mapping {
			m[k] = v
		}
		s.found = append(s.found, m)
		return s.max > 0 && len(s.found) >= s.max
	}
	p := s.order[depth]
	for _, t := range s.cands[p] {
		if s.usedT[t] || !s.consistent(p, t) {
			continue
		}
		s.mapping[p] = t
		s.usedT[t] = true
		stop := s.search(depth + 1)
		delete(s.mapping, p)
		delete(s.usedT, t)
		if stop {
			return true
		}
	}
	return false
}

// consistent checks that assigning pattern node p to target node t preserves
// the induced dataflow edges against every already-mapped pattern node.
func (s *searcher) consistent(p, t int) bool {
	for q, u := range s.mapping {
		pq := s.pd.Data.HasEdge(p, q)
		qp := s.pd.Data.HasEdge(q, p)
		tu := s.td.Data.HasEdge(t, u)
		ut := s.td.Data.HasEdge(u, t)
		if pq != tu || qp != ut {
			return false
		}
	}
	return true
}

// Targets returns the target node set of a mapping.
func (m Mapping) Targets(capacity int) graph.NodeSet {
	s := graph.NewNodeSet(capacity)
	for _, t := range m {
		s.Add(t)
	}
	return s
}

// Overlaps reports whether the mapping's targets intersect the given set.
func (m Mapping) Overlaps(s graph.NodeSet) bool {
	for _, t := range m {
		if s.Contains(t) {
			return true
		}
	}
	return false
}

// Canonical returns a structural fingerprint of the pattern subset: opcodes
// plus iterated neighborhood refinement (Weisfeiler-Leman style, 3 rounds,
// restricted to internal dataflow edges), sorted. Two ISE datapaths with
// equal fingerprints are treated as identical hardware for sharing purposes.
func Canonical(d *dfg.DFG, nodes graph.NodeSet) string {
	ids := nodes.Values()
	label := make(map[int]string, len(ids))
	for _, v := range ids {
		label[v] = d.Nodes[v].Instr.Op.String()
	}
	for round := 0; round < 3; round++ {
		next := make(map[int]string, len(ids))
		for _, v := range ids {
			var ins, outs []string
			for _, p := range d.Data.Preds(v) {
				if nodes.Contains(p) {
					ins = append(ins, label[p])
				}
			}
			for _, q := range d.Data.Succs(v) {
				if nodes.Contains(q) {
					outs = append(outs, label[q])
				}
			}
			sort.Strings(ins)
			sort.Strings(outs)
			next[v] = fmt.Sprintf("%s(%s|%s)", label[v], strings.Join(ins, ","), strings.Join(outs, ","))
		}
		label = next
	}
	all := make([]string, 0, len(ids))
	for _, v := range ids {
		all = append(all, label[v])
	}
	sort.Strings(all)
	return strings.Join(all, ";")
}
