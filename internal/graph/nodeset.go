package graph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// NodeSet is a set of node IDs backed by a bitmap, sized for a particular
// graph. All subset-level graph queries take NodeSets.
type NodeSet struct {
	bits []uint64
	n    int
}

// NewNodeSet returns an empty set able to hold IDs in [0, capacity).
func NewNodeSet(capacity int) NodeSet {
	return NodeSet{bits: make([]uint64, (capacity+63)/64)}
}

// NodeSetOf returns a set holding exactly the given IDs.
func NodeSetOf(capacity int, ids ...int) NodeSet {
	s := NewNodeSet(capacity)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id into the set.
func (s *NodeSet) Add(id int) {
	w, b := id/64, uint(id%64)
	if s.bits[w]&(1<<b) == 0 {
		s.bits[w] |= 1 << b
		s.n++
	}
}

// Remove deletes id from the set.
func (s *NodeSet) Remove(id int) {
	w, b := id/64, uint(id%64)
	if s.bits[w]&(1<<b) != 0 {
		s.bits[w] &^= 1 << b
		s.n--
	}
}

// Contains reports membership of id.
func (s NodeSet) Contains(id int) bool {
	if id < 0 || id/64 >= len(s.bits) {
		return false
	}
	return s.bits[id/64]&(1<<uint(id%64)) != 0
}

// Len returns the number of members.
func (s NodeSet) Len() int { return s.n }

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool { return s.n == 0 }

// Values returns the members in increasing order.
func (s NodeSet) Values() []int {
	out := make([]int, 0, s.n)
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &^= 1 << uint(b)
		}
	}
	return out
}

// AppendValues appends the members in increasing order to dst and returns
// the extended slice. It is the allocation-free counterpart of Values for
// arena-style callers that own a reusable buffer.
func (s NodeSet) AppendValues(dst []int) []int {
	for w, word := range s.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*64+b)
			word &^= 1 << uint(b)
		}
	}
	return dst
}

// Reset reinitializes s in place to an empty set able to hold IDs in
// [0, capacity), reusing the backing array when it is large enough. It is the
// allocation-free counterpart of NewNodeSet for arena-style reuse.
//
//alloc:amortized grows the backing bitmap only when capacity increases; steady-state resets reuse it
func (s *NodeSet) Reset(capacity int) {
	w := (capacity + 63) / 64
	if cap(s.bits) < w {
		s.bits = make([]uint64, w)
	} else {
		s.bits = s.bits[:w]
		for i := range s.bits {
			s.bits[i] = 0
		}
	}
	s.n = 0
}

// Intersects reports whether s and t share at least one member, without
// allocating (unlike Intersect, which clones).
func (s NodeSet) Intersects(t NodeSet) bool {
	n := len(s.bits)
	if len(t.bits) < n {
		n = len(t.bits)
	}
	for w := 0; w < n; w++ {
		if s.bits[w]&t.bits[w] != 0 {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the set.
func (s NodeSet) Clone() NodeSet {
	c := NodeSet{bits: make([]uint64, len(s.bits)), n: s.n}
	copy(c.bits, s.bits)
	return c
}

// Union returns a new set containing members of either set. Both sets must
// have the same capacity.
func (s NodeSet) Union(t NodeSet) NodeSet {
	c := s.Clone()
	for w := range t.bits {
		c.bits[w] |= t.bits[w]
	}
	c.recount()
	return c
}

// Intersect returns a new set containing members of both sets.
func (s NodeSet) Intersect(t NodeSet) NodeSet {
	c := s.Clone()
	for w := range t.bits {
		c.bits[w] &= t.bits[w]
	}
	for w := len(t.bits); w < len(c.bits); w++ {
		c.bits[w] = 0
	}
	c.recount()
	return c
}

// Subtract returns a new set containing members of s not in t.
func (s NodeSet) Subtract(t NodeSet) NodeSet {
	c := s.Clone()
	n := len(t.bits)
	if len(c.bits) < n {
		n = len(c.bits)
	}
	for w := 0; w < n; w++ {
		c.bits[w] &^= t.bits[w]
	}
	c.recount()
	return c
}

// Equal reports whether both sets have identical membership.
func (s NodeSet) Equal(t NodeSet) bool {
	if s.n != t.n {
		return false
	}
	short, long := s.bits, t.bits
	if len(short) > len(long) {
		short, long = long, short
	}
	for w := range short {
		if short[w] != long[w] {
			return false
		}
	}
	for w := len(short); w < len(long); w++ {
		if long[w] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is also in t.
func (s NodeSet) SubsetOf(t NodeSet) bool {
	for w := range s.bits {
		var tb uint64
		if w < len(t.bits) {
			tb = t.bits[w]
		}
		if s.bits[w]&^tb != 0 {
			return false
		}
	}
	return true
}

func (s *NodeSet) recount() {
	n := 0
	for _, word := range s.bits {
		n += bits.OnesCount64(word)
	}
	s.n = n
}

// String renders the set as "{a, b, c}" with sorted members.
func (s NodeSet) String() string {
	vals := s.Values()
	sort.Ints(vals)
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
