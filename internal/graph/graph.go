// Package graph provides the directed-acyclic-graph kernel used by every
// dataflow-level subsystem of the repository: topological ordering,
// reachability closures, convexity checks for candidate instruction-set
// extensions, and input/output value counting of node subsets.
//
// Nodes are dense integer IDs in [0, N). The graph is append-only: nodes and
// edges can be added but not removed, which matches how dataflow graphs are
// built from basic blocks. Subset-level operations take a NodeSet so that the
// same immutable graph can be queried for many candidate subgraphs.
package graph

import (
	"fmt"
	"math/bits"
	"sort"
)

// Graph is a directed graph over dense integer node IDs.
// The zero value is an empty graph ready to use.
type Graph struct {
	succs [][]int
	preds [][]int
	edges int
}

// New returns a graph pre-sized for n nodes (IDs 0..n-1).
func New(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.AddNode()
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.succs) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddNode appends a new node and returns its ID.
func (g *Graph) AddNode() int {
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return len(g.succs) - 1
}

// AddEdge inserts the edge u -> v. Duplicate edges are ignored.
// It panics if either endpoint is out of range or u == v.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= g.Len() || v < 0 || v >= g.Len() {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.Len()))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self edge at node %d", u))
	}
	for _, w := range g.succs[u] {
		if w == v {
			return
		}
	}
	g.succs[u] = append(g.succs[u], v)
	g.preds[v] = append(g.preds[v], u)
	g.edges++
}

// HasEdge reports whether the edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.Len() || v < 0 || v >= g.Len() {
		return false
	}
	for _, w := range g.succs[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Succs returns the successors of node u. The returned slice must not be
// modified.
func (g *Graph) Succs(u int) []int { return g.succs[u] }

// Preds returns the predecessors of node u. The returned slice must not be
// modified.
func (g *Graph) Preds(u int) []int { return g.preds[u] }

// InDegree returns the number of predecessors of u.
func (g *Graph) InDegree(u int) int { return len(g.preds[u]) }

// OutDegree returns the number of successors of u.
func (g *Graph) OutDegree(u int) int { return len(g.succs[u]) }

// Roots returns all nodes with no predecessors, in increasing ID order.
func (g *Graph) Roots() []int {
	var r []int
	for v := 0; v < g.Len(); v++ {
		if len(g.preds[v]) == 0 {
			r = append(r, v)
		}
	}
	return r
}

// Leaves returns all nodes with no successors, in increasing ID order.
func (g *Graph) Leaves() []int {
	var r []int
	for v := 0; v < g.Len(); v++ {
		if len(g.succs[v]) == 0 {
			r = append(r, v)
		}
	}
	return r
}

// TopoOrder returns a topological ordering of all nodes, or an error if the
// graph contains a cycle. Ties are broken by smallest node ID so the order is
// deterministic.
func (g *Graph) TopoOrder() ([]int, error) {
	n := g.Len()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.preds[v])
	}
	// Min-heap behaviour via sorted ready list keeps the result deterministic.
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, w := range g.succs[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("graph: cycle detected (%d of %d nodes ordered)", len(order), n)
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no cycles.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// ReachableFrom returns the set of nodes reachable from u by following
// successor edges, excluding u itself.
func (g *Graph) ReachableFrom(u int) NodeSet {
	out := NewNodeSet(g.Len())
	g.walk(u, g.succs, out)
	return out
}

// ReachingTo returns the set of nodes from which u is reachable, excluding u
// itself.
func (g *Graph) ReachingTo(u int) NodeSet {
	out := NewNodeSet(g.Len())
	g.walk(u, g.preds, out)
	return out
}

func (g *Graph) walk(u int, next [][]int, out NodeSet) {
	stack := append([]int(nil), next[u]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out.Contains(v) {
			continue
		}
		out.Add(v)
		stack = append(stack, next[v]...)
	}
}

// HasPath reports whether v is reachable from u (u != v) via successor edges.
func (g *Graph) HasPath(u, v int) bool {
	if u == v {
		return false
	}
	return g.ReachableFrom(u).Contains(v)
}

// IsConvex reports whether the node subset s is convex: no path from a node
// in s to another node in s passes through a node outside s. Convexity is the
// feasibility condition for atomically issuing a candidate ISE.
func (g *Graph) IsConvex(s NodeSet) bool {
	var sc Scratch
	return g.IsConvexScratch(s, &sc)
}

// Scratch holds reusable traversal buffers for the allocation-free query
// variants. A zero Scratch is ready to use; callers reusing one across calls
// (e.g. a scheduling kernel's arena) amortize the buffers to zero steady-state
// allocations. A Scratch must not be shared between goroutines.
type Scratch struct {
	seen  NodeSet
	stack []int
}

// IsConvexScratch is IsConvex using sc's buffers instead of fresh ones.
func (g *Graph) IsConvexScratch(s NodeSet, sc *Scratch) bool {
	// A subset is convex iff no node outside s is simultaneously reachable
	// from s and able to reach s. Walk forward from the out-frontier of s,
	// stopping at nodes of s; if we re-enter s, a violating path exists.
	sc.seen.Reset(g.Len())
	stack := sc.stack[:0]
	defer func() { sc.stack = stack }()
	for w, word := range s.bits {
		for word != 0 {
			u := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			for _, x := range g.succs[u] {
				if !s.Contains(x) && !sc.seen.Contains(x) {
					sc.seen.Add(x)
					stack = append(stack, x)
				}
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, x := range g.succs[v] {
			if s.Contains(x) {
				return false
			}
			if !sc.seen.Contains(x) {
				sc.seen.Add(x)
				stack = append(stack, x)
			}
		}
	}
	return true
}

// ConvexViolators returns the outside nodes that lie on some path between two
// nodes of s. The result is empty iff s is convex.
func (g *Graph) ConvexViolators(s NodeSet) []int {
	reachFromS := NewNodeSet(g.Len())
	var stack []int
	for _, u := range s.Values() {
		for _, w := range g.succs[u] {
			if !s.Contains(w) && !reachFromS.Contains(w) {
				reachFromS.Add(w)
				stack = append(stack, w)
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.succs[v] {
			if !s.Contains(w) && !reachFromS.Contains(w) {
				reachFromS.Add(w)
				stack = append(stack, w)
			}
		}
	}
	reachToS := NewNodeSet(g.Len())
	stack = stack[:0]
	for _, u := range s.Values() {
		for _, w := range g.preds[u] {
			if !s.Contains(w) && !reachToS.Contains(w) {
				reachToS.Add(w)
				stack = append(stack, w)
			}
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.preds[v] {
			if !s.Contains(w) && !reachToS.Contains(w) {
				reachToS.Add(w)
				stack = append(stack, w)
			}
		}
	}
	var out []int
	for v := 0; v < g.Len(); v++ {
		if reachFromS.Contains(v) && reachToS.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// ConnectedComponents partitions the subset s into weakly connected
// components (treating edges as undirected, restricted to s). Components are
// returned in order of their smallest member.
func (g *Graph) ConnectedComponents(s NodeSet) []NodeSet {
	var comps []NodeSet
	visited := NewNodeSet(g.Len())
	for _, start := range s.Values() {
		if visited.Contains(start) {
			continue
		}
		comp := NewNodeSet(g.Len())
		stack := []int{start}
		visited.Add(start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp.Add(v)
			for _, w := range g.succs[v] {
				if s.Contains(w) && !visited.Contains(w) {
					visited.Add(w)
					stack = append(stack, w)
				}
			}
			for _, w := range g.preds[v] {
				if s.Contains(w) && !visited.Contains(w) {
					visited.Add(w)
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// LongestPath returns, for every node, the length of the longest path ending
// at that node where each node v contributes weight[v]. It panics if the
// graph is cyclic. This is the standard critical-path recurrence used for
// latency-weighted DFGs.
func (g *Graph) LongestPath(weight []float64) []float64 {
	order, err := g.TopoOrder()
	if err != nil {
		panic("graph: LongestPath on cyclic graph")
	}
	dist := make([]float64, g.Len())
	for _, v := range order {
		best := 0.0
		for _, u := range g.preds[v] {
			if dist[u] > best {
				best = dist[u]
			}
		}
		dist[v] = best + weight[v]
	}
	return dist
}
