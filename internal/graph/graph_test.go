package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// diamond builds the graph 0 -> {1,2} -> 3.
func diamond() *Graph {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}

// chain builds 0 -> 1 -> ... -> n-1.
func chain(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestAddEdgeDuplicateIgnored(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if got := g.Succs(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Succs(0) = %v, want [1]", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []struct {
		name string
		u, v int
	}{
		{"self", 1, 1},
		{"negative", -1, 0},
		{"out of range", 0, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddEdge(%d,%d) did not panic", c.u, c.v)
				}
			}()
			g := New(3)
			g.AddEdge(c.u, c.v)
		})
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := chain(5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("TopoOrder = %v, want %v", order, want)
	}
}

func TestTopoOrderDeterministicTieBreak(t *testing.T) {
	// 2 -> 0 and 2 -> 1; nodes 3,4 isolated. Smallest-ID tie-break gives a
	// unique answer.
	g := New(5)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 0, 1, 3, 4}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("TopoOrder = %v, want %v", order, want)
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("TopoOrder on cyclic graph returned no error")
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic reported true for a cycle")
	}
}

func TestRootsLeaves(t *testing.T) {
	g := diamond()
	if got := g.Roots(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Roots = %v, want [0]", got)
	}
	if got := g.Leaves(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Leaves = %v, want [3]", got)
	}
}

func TestReachability(t *testing.T) {
	g := diamond()
	from0 := g.ReachableFrom(0)
	for _, v := range []int{1, 2, 3} {
		if !from0.Contains(v) {
			t.Errorf("ReachableFrom(0) missing %d", v)
		}
	}
	if from0.Contains(0) {
		t.Error("ReachableFrom(0) contains the start node")
	}
	to3 := g.ReachingTo(3)
	for _, v := range []int{0, 1, 2} {
		if !to3.Contains(v) {
			t.Errorf("ReachingTo(3) missing %d", v)
		}
	}
	if !g.HasPath(0, 3) {
		t.Error("HasPath(0,3) = false")
	}
	if g.HasPath(3, 0) {
		t.Error("HasPath(3,0) = true")
	}
	if g.HasPath(1, 2) {
		t.Error("HasPath(1,2) = true for parallel branches")
	}
}

func TestIsConvex(t *testing.T) {
	g := diamond()
	cases := []struct {
		name string
		ids  []int
		want bool
	}{
		{"whole graph", []int{0, 1, 2, 3}, true},
		{"single node", []int{1}, true},
		{"two independent middles", []int{1, 2}, true},
		{"endpoints with middles outside", []int{0, 3}, false},
		{"one middle plus endpoints", []int{0, 1, 3}, false},
		{"empty", nil, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NodeSetOf(g.Len(), c.ids...)
			if got := g.IsConvex(s); got != c.want {
				t.Fatalf("IsConvex(%v) = %v, want %v", c.ids, got, c.want)
			}
			viol := g.ConvexViolators(s)
			if (len(viol) == 0) != c.want {
				t.Fatalf("ConvexViolators(%v) = %v, inconsistent with convexity %v", c.ids, viol, c.want)
			}
		})
	}
}

func TestConvexViolatorsIdentifiesMiddle(t *testing.T) {
	g := chain(3)
	s := NodeSetOf(3, 0, 2)
	viol := g.ConvexViolators(s)
	if !reflect.DeepEqual(viol, []int{1}) {
		t.Fatalf("ConvexViolators({0,2}) = %v, want [1]", viol)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := diamond()
	// {1,2} are not connected to each other inside the subset (their only
	// connections run through 0 and 3, which are outside).
	comps := g.ConnectedComponents(NodeSetOf(4, 1, 2))
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	// {0,1,3} is a single weak component.
	comps = g.ConnectedComponents(NodeSetOf(4, 0, 1, 3))
	if len(comps) != 1 || comps[0].Len() != 3 {
		t.Fatalf("got %v, want one 3-node component", comps)
	}
}

func TestLongestPath(t *testing.T) {
	g := diamond()
	w := []float64{1, 2, 5, 1}
	dist := g.LongestPath(w)
	want := []float64{1, 3, 6, 7}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("LongestPath = %v, want %v", dist, want)
	}
}

func TestLongestPathPanicsOnCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.succs[1] = append(g.succs[1], 0) // force a cycle bypassing AddEdge checks
	g.preds[0] = append(g.preds[0], 1)
	defer func() {
		if recover() == nil {
			t.Fatal("LongestPath on cycle did not panic")
		}
	}()
	g.LongestPath([]float64{1, 1})
}

func randomDAG(r *rand.Rand, n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Intn(3) == 0 {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(20)
		g := randomDAG(r, n)
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Succs(u) {
				if pos[u] >= pos[v] {
					t.Fatalf("trial %d: edge (%d,%d) violates topo order", trial, u, v)
				}
			}
		}
	}
}

func TestConvexityPropertyRandomSubsets(t *testing.T) {
	// IsConvex must agree with a brute-force path check on random DAGs.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(10)
		g := randomDAG(r, n)
		s := NewNodeSet(n)
		for v := 0; v < n; v++ {
			if r.Intn(2) == 0 {
				s.Add(v)
			}
		}
		want := bruteConvex(g, s)
		if got := g.IsConvex(s); got != want {
			t.Fatalf("trial %d: IsConvex(%v) = %v, brute force = %v", trial, s, got, want)
		}
	}
}

// bruteConvex checks convexity by enumerating all simple paths between
// members of s and verifying no interior node is outside s.
func bruteConvex(g *Graph, s NodeSet) bool {
	for _, u := range s.Values() {
		for _, mid := range g.Succs(u) {
			if s.Contains(mid) {
				continue
			}
			// Can this outside node reach back into s?
			seen := NewNodeSet(g.Len())
			stack := []int{mid}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen.Contains(v) {
					continue
				}
				seen.Add(v)
				for _, w := range g.Succs(v) {
					if s.Contains(w) {
						return false
					}
					stack = append(stack, w)
				}
			}
		}
	}
	return true
}

func TestNodeSetBasics(t *testing.T) {
	s := NewNodeSet(100)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(64) // second word
	s.Add(3)  // duplicate
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(3) || !s.Contains(64) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	s.Remove(3)
	s.Remove(3) // double remove must not corrupt count
	if s.Len() != 1 || s.Contains(3) {
		t.Fatalf("after Remove: Len=%d Contains(3)=%v", s.Len(), s.Contains(3))
	}
	if s.Contains(-1) || s.Contains(1000) {
		t.Fatal("Contains out-of-range returned true")
	}
}

func TestNodeSetAlgebra(t *testing.T) {
	a := NodeSetOf(10, 1, 2, 3)
	b := NodeSetOf(10, 3, 4)
	if got := a.Union(b).Values(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b).Values(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Subtract(b).Values(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("Subtract = %v", got)
	}
	if !NodeSetOf(10, 1, 2).SubsetOf(a) {
		t.Error("SubsetOf = false, want true")
	}
	if a.SubsetOf(b) {
		t.Error("SubsetOf = true, want false")
	}
	if !a.Equal(NodeSetOf(10, 3, 2, 1)) {
		t.Error("Equal = false for same membership")
	}
	if a.Equal(b) {
		t.Error("Equal = true for different membership")
	}
}

func TestNodeSetString(t *testing.T) {
	s := NodeSetOf(10, 5, 1)
	if got := s.String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
}

func TestNodeSetCloneIndependent(t *testing.T) {
	a := NodeSetOf(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("Clone shares storage")
	}
}

func TestNodeSetQuickUnionCommutative(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewNodeSet(256), NewNodeSet(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSetQuickSubtractDisjoint(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewNodeSet(256), NewNodeSet(256)
		for _, x := range xs {
			a.Add(int(x))
		}
		for _, y := range ys {
			b.Add(int(y))
		}
		return a.Subtract(b).Intersect(b).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
