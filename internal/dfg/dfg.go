// Package dfg builds per-basic-block dataflow graphs — the G of the paper —
// and the extended graph G+ in which every operation carries its
// implementation-option (IO) table. It also answers the subgraph-level
// queries the ISE formulation of §4.2 needs: IN(S), OUT(S) value counts and
// convexity.
package dfg

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/prog"
)

// ValueSource identifies where a node input value comes from: another node
// of the same block (Producer >= 0) or a block live-in register
// (Producer == -1, Reg names it).
type ValueSource struct {
	Producer int
	Reg      prog.Reg
}

// Node is one operation of the DFG with its implementation-option table
// attached (the G+ extension of §4.1).
type Node struct {
	ID    int
	Instr prog.Instr
	// SW and HW are the software and hardware implementation options. HW is
	// empty for operations that cannot join an ISE.
	SW []isa.SWOption
	HW []isa.HWOption
	// Inputs are the register data inputs (excluding $zero, which is wired
	// constant and consumes no read port).
	Inputs []ValueSource
	// DataSuccs are nodes consuming this node's value.
	DataSuccs []int
	// LiveOut reports whether this node produces the final definition of a
	// register that is live out of the block.
	LiveOut bool
}

// ISEEligible reports whether the node may be packed into an ISE.
func (n *Node) ISEEligible() bool { return len(n.HW) > 0 }

// DFG is the dataflow graph of one basic block, weighted by its profiled
// execution count.
type DFG struct {
	Name       string
	BlockIndex int
	Weight     uint64
	Nodes      []*Node
	// G holds every scheduling dependence: data edges, memory-order edges
	// and the store→terminator edge.
	G *graph.Graph
	// Data holds only true dataflow edges; candidate-ISE value counting
	// runs on this graph.
	Data *graph.Graph

	reachMu sync.Mutex
	// reach holds lazy per-node descendant sets; guarded by reachMu.
	reach []graph.NodeSet
	// reachDone marks filled entries of reach; guarded by reachMu.
	reachDone []bool

	// fp is the lazily computed content fingerprint; fpOnce ensures the
	// computation runs at most once and publishes fp safely.
	fpOnce sync.Once
	fp     [2]uint64
}

// Build constructs the DFG of block blockIdx of p, weighted by weight.
// liveOut is that block's live-out register set from global liveness.
func Build(p *prog.Program, blockIdx int, weight uint64, liveOut prog.RegSet) *DFG {
	bb := p.Blocks[blockIdx]
	n := len(bb.Instrs)
	d := &DFG{
		Name:       fmt.Sprintf("%s/%s", p.Name, bb.Name()),
		BlockIndex: blockIdx,
		Weight:     weight,
		G:          graph.New(n),
		Data:       graph.New(n),
	}
	lastDef := map[prog.Reg]int{}
	var lastStore = -1
	var loadsSinceStore []int
	for i, in := range bb.Instrs {
		node := &Node{
			ID:    i,
			Instr: in,
			SW:    isa.SoftwareOptions(in.Op),
			HW:    isa.HardwareOptions(in.Op),
		}
		d.Nodes = append(d.Nodes, node)
		for _, r := range in.Uses() {
			if r == prog.Zero {
				continue
			}
			if def, ok := lastDef[r]; ok {
				d.G.AddEdge(def, i)
				d.Data.AddEdge(def, i)
				node.Inputs = append(node.Inputs, ValueSource{Producer: def, Reg: r})
				d.Nodes[def].DataSuccs = appendUnique(d.Nodes[def].DataSuccs, i)
			} else {
				node.Inputs = append(node.Inputs, ValueSource{Producer: -1, Reg: r})
			}
		}
		// Conservative memory ordering (no alias analysis): stores are
		// ordered with every other memory access.
		if isa.IsLoad(in.Op) {
			if lastStore >= 0 {
				d.G.AddEdge(lastStore, i)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		}
		if isa.IsStore(in.Op) {
			if lastStore >= 0 {
				d.G.AddEdge(lastStore, i)
			}
			for _, l := range loadsSinceStore {
				d.G.AddEdge(l, i)
			}
			lastStore = i
			loadsSinceStore = nil
		}
		if dr, ok := in.Defs(); ok {
			lastDef[dr] = i
		}
	}
	// Stores must complete before control leaves the block.
	if term, ok := bb.Terminator(); ok && isa.IsBranch(term.Op) {
		ti := n - 1
		if lastStore >= 0 && lastStore != ti {
			d.G.AddEdge(lastStore, ti)
		}
	}
	// Mark live-out producers.
	for r, def := range lastDef {
		if liveOut.Contains(r) {
			d.Nodes[def].LiveOut = true
		}
	}
	return d
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Len returns the number of operations.
func (d *DFG) Len() int { return len(d.Nodes) }

// Fingerprint returns a 128-bit content hash of everything a schedule of
// this DFG can depend on: the name, the per-node implementation-option
// tables, input sources, data successors, live-out flags, and both edge
// sets. Two DFGs with equal fingerprints are interchangeable for schedule
// evaluation (up to the ~2^-128 collision probability of the two independent
// multiply-mix chains), so caches may key on the fingerprint instead of the
// (non-unique) name. Computed once per DFG and safe for concurrent use.
func (d *DFG) Fingerprint() [2]uint64 {
	d.fpOnce.Do(func() {
		h1, h2 := uint64(14695981039346656037), uint64(0x9e3779b97f4a7c15)
		mix := func(v uint64) {
			h1 = (h1 ^ v) * 1099511628211
			h2 = (h2 ^ bits.RotateLeft64(v, 31)) * 0xff51afd7ed558ccd
		}
		for i := 0; i < len(d.Name); i++ {
			mix(uint64(d.Name[i]))
		}
		mix(uint64(len(d.Nodes)))
		for _, n := range d.Nodes {
			mix(uint64(n.Instr.Op))
			mix(uint64(len(n.SW)))
			for _, o := range n.SW {
				mix(uint64(o.Cycles))
				mix(uint64(o.Class))
			}
			mix(uint64(len(n.HW)))
			for _, o := range n.HW {
				mix(math.Float64bits(o.DelayNS))
				mix(math.Float64bits(o.AreaUM2))
			}
			mix(uint64(len(n.Inputs)))
			for _, src := range n.Inputs {
				mix(uint64(int64(src.Producer)))
				mix(uint64(src.Reg))
			}
			mix(uint64(len(n.DataSuccs)))
			for _, s := range n.DataSuccs {
				mix(uint64(s))
			}
			if n.LiveOut {
				mix(1)
			} else {
				mix(0)
			}
		}
		for _, g := range []*graph.Graph{d.G, d.Data} {
			for u := 0; u < g.Len(); u++ {
				ss := g.Succs(u)
				mix(uint64(len(ss)))
				for _, v := range ss {
					mix(uint64(v))
				}
			}
		}
		d.fp = [2]uint64{h1, h2}
	})
	return d.fp
}

// In returns IN(S): the number of distinct register values the subgraph
// consumes from outside itself — reads of the ISE's register operands.
func (d *DFG) In(s graph.NodeSet) int {
	type key struct {
		producer int
		reg      prog.Reg
	}
	seen := map[key]bool{}
	for _, id := range s.Values() {
		for _, src := range d.Nodes[id].Inputs {
			if src.Producer >= 0 && s.Contains(src.Producer) {
				continue // internal value
			}
			k := key{src.Producer, src.Reg}
			if src.Producer >= 0 {
				k.reg = 0 // identified by producer alone
			}
			seen[k] = true
		}
	}
	return len(seen)
}

// Out returns OUT(S): the number of nodes in S whose value escapes S —
// consumed by an outside node or live out of the block.
func (d *DFG) Out(s graph.NodeSet) int {
	out := 0
	for _, id := range s.Values() {
		n := d.Nodes[id]
		escapes := n.LiveOut
		if !escapes {
			for _, succ := range n.DataSuccs {
				if !s.Contains(succ) {
					escapes = true
					break
				}
			}
		}
		if escapes {
			out++
		}
	}
	return out
}

// IsConvex reports whether S is convex in the full dependence graph.
func (d *DFG) IsConvex(s graph.NodeSet) bool { return d.G.IsConvex(s) }

// descendants returns (and caches) the set of nodes reachable from v.
//
//alloc:amortized memoized per-node reachability; each set is computed once and served from the cache thereafter
func (d *DFG) descendants(v int) graph.NodeSet {
	d.reachMu.Lock()
	defer d.reachMu.Unlock()
	if d.reach == nil {
		d.reach = make([]graph.NodeSet, d.Len())
		d.reachDone = make([]bool, d.Len())
	}
	if !d.reachDone[v] {
		d.reach[v] = d.G.ReachableFrom(v)
		d.reachDone[v] = true
	}
	return d.reach[v]
}

// Reaches reports whether any node of from has a path to any node of to.
func (d *DFG) Reaches(from, to graph.NodeSet) bool {
	for _, v := range from.Values() {
		if d.descendants(v).Intersects(to) {
			return true
		}
	}
	return false
}

// ReachesFromNode reports whether node v has a path to any node of to. It is
// the allocation-free single-source form of Reaches (the descendant set of v
// is computed once per DFG and cached), used by arena-style callers that hold
// group members as index slices rather than NodeSets.
func (d *DFG) ReachesFromNode(v int, to graph.NodeSet) bool {
	return d.descendants(v).Intersects(to)
}

// Interlocked reports whether two node sets are mutually dependent — each
// reaches the other — which makes issuing both atomically impossible even
// when each set is individually convex.
func (d *DFG) Interlocked(a, b graph.NodeSet) bool {
	return d.Reaches(a, b) && d.Reaches(b, a)
}

// AllEligible reports whether every node of S may join an ISE.
func (d *DFG) AllEligible(s graph.NodeSet) bool {
	for _, id := range s.Values() {
		if !d.Nodes[id].ISEEligible() {
			return false
		}
	}
	return true
}

// CriticalPathLen returns the longest dependence chain length in
// instructions (every node weighted 1) — the floor on execution cycles at
// unit latency regardless of issue width.
func (d *DFG) CriticalPathLen() int {
	if d.Len() == 0 {
		return 0
	}
	w := make([]float64, d.Len())
	for i := range w {
		w[i] = 1
	}
	dist := d.G.LongestPath(w)
	best := 0.0
	for _, v := range dist {
		if v > best {
			best = v
		}
	}
	return int(best)
}

// String renders the DFG with one line per node.
func (d *DFG) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dfg %s (weight %d)\n", d.Name, d.Weight)
	for _, n := range d.Nodes {
		fmt.Fprintf(&sb, "  n%d: %-28s", n.ID, n.Instr.String())
		if len(n.HW) > 0 {
			fmt.Fprintf(&sb, " hw×%d", len(n.HW))
		}
		if n.LiveOut {
			sb.WriteString(" live-out")
		}
		if succs := d.G.Succs(n.ID); len(succs) > 0 {
			fmt.Fprintf(&sb, " -> %v", succs)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BuildAll builds the DFG of every block listed in blocks, using the
// program's liveness and the profile weights.
func BuildAll(p *prog.Program, blocks []int, weights []uint64) []*DFG {
	lv := prog.ComputeLiveness(p)
	out := make([]*DFG, 0, len(blocks))
	for _, bi := range blocks {
		var w uint64 = 1
		if bi < len(weights) {
			w = weights[bi]
		}
		out = append(out, Build(p, bi, w, lv.LiveOut[bi]))
	}
	return out
}
