package dfg

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// DOT renders the DFG in Graphviz format. Nodes listed in highlight groups
// are clustered and filled — the form used to visualize explored ISEs.
// Order edges (memory/control) are drawn dashed.
func (d *DFG) DOT(w io.Writer, highlights ...graph.NodeSet) {
	fmt.Fprintf(w, "digraph %q {\n", sanitizeDot(d.Name))
	fmt.Fprintln(w, "  rankdir=TB;")
	fmt.Fprintln(w, "  node [shape=box, fontname=\"monospace\", fontsize=10];")

	inGroup := make([]int, d.Len())
	for i := range inGroup {
		inGroup[i] = -1
	}
	for gi, hs := range highlights {
		for _, v := range hs.Values() {
			inGroup[v] = gi
		}
	}
	// Clusters for each highlight group.
	for gi, hs := range highlights {
		fmt.Fprintf(w, "  subgraph cluster_ise%d {\n", gi)
		fmt.Fprintf(w, "    label=\"ISE %d\"; style=filled; color=lightgrey;\n", gi+1)
		for _, v := range hs.Values() {
			fmt.Fprintf(w, "    n%d [label=%q, style=filled, fillcolor=white];\n",
				v, fmt.Sprintf("n%d: %s", v, d.Nodes[v].Instr))
		}
		fmt.Fprintln(w, "  }")
	}
	for v := 0; v < d.Len(); v++ {
		if inGroup[v] >= 0 {
			continue
		}
		attrs := ""
		if !d.Nodes[v].ISEEligible() {
			attrs = ", color=gray50, fontcolor=gray30"
		}
		fmt.Fprintf(w, "  n%d [label=%q%s];\n", v, fmt.Sprintf("n%d: %s", v, d.Nodes[v].Instr), attrs)
	}
	for u := 0; u < d.G.Len(); u++ {
		for _, v := range d.G.Succs(u) {
			if d.Data.HasEdge(u, v) {
				fmt.Fprintf(w, "  n%d -> n%d;\n", u, v)
			} else {
				fmt.Fprintf(w, "  n%d -> n%d [style=dashed, color=gray50];\n", u, v)
			}
		}
	}
	fmt.Fprintln(w, "}")
}

func sanitizeDot(s string) string {
	return strings.ReplaceAll(s, `"`, `'`)
}
