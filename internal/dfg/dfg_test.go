package dfg

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/prog"
)

// buildBlock assembles a single-block program from the given instructions
// (a halt is appended) and returns its DFG.
func buildBlock(t *testing.T, emit func(b *prog.Builder)) *DFG {
	t.Helper()
	b := prog.NewBuilder("t")
	emit(b)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lv := prog.ComputeLiveness(p)
	return Build(p, 0, 1, lv.LiveOut[0])
}

func TestDataEdges(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 1)     // n0
		b.I(isa.OpORI, prog.T1, prog.Zero, 2)     // n1
		b.R(isa.OpADD, prog.T2, prog.T0, prog.T1) // n2
		b.R(isa.OpXOR, prog.T3, prog.T2, prog.T0) // n3
	})
	if !d.Data.HasEdge(0, 2) || !d.Data.HasEdge(1, 2) {
		t.Error("missing def-use edges into add")
	}
	if !d.Data.HasEdge(2, 3) || !d.Data.HasEdge(0, 3) {
		t.Error("missing def-use edges into xor")
	}
	if d.Data.HasEdge(1, 3) {
		t.Error("phantom edge n1->n3")
	}
	// $zero reads never create inputs.
	if len(d.Nodes[0].Inputs) != 0 {
		t.Errorf("ori inputs = %v, want none ($zero is free)", d.Nodes[0].Inputs)
	}
}

func TestLastDefWins(t *testing.T) {
	// A redefinition must cut dataflow from the old def.
	d := buildBlock(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 1)     // n0
		b.I(isa.OpORI, prog.T0, prog.Zero, 2)     // n1 redefines $t0
		b.R(isa.OpADD, prog.T1, prog.T0, prog.T0) // n2 reads n1 only
	})
	if d.Data.HasEdge(0, 2) {
		t.Error("stale def feeds use")
	}
	if !d.Data.HasEdge(1, 2) {
		t.Error("fresh def does not feed use")
	}
}

func TestLiveInInputs(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T2, prog.A0, prog.A1) // both operands live-in
	})
	n := d.Nodes[0]
	if len(n.Inputs) != 2 {
		t.Fatalf("inputs = %v, want 2 live-in sources", n.Inputs)
	}
	for _, in := range n.Inputs {
		if in.Producer != -1 {
			t.Errorf("live-in input has producer %d", in.Producer)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.Load(isa.OpLW, prog.T0, prog.SP, 0)  // n0
		b.Store(isa.OpSW, prog.T0, prog.SP, 4) // n1
		b.Load(isa.OpLW, prog.T1, prog.SP, 8)  // n2
		b.Store(isa.OpSW, prog.T1, prog.SP, 0) // n3
	})
	// load0 -> store1 (load before store), store1 -> load2, store1 -> store3,
	// load2 -> store3.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {1, 3}, {2, 3}} {
		if !d.G.HasEdge(e[0], e[1]) {
			t.Errorf("missing memory order edge %v", e)
		}
	}
	// The data graph must not carry the pure ordering edges.
	if d.Data.HasEdge(1, 2) {
		t.Error("order edge leaked into data graph")
	}
	// Final store ordered before the terminator (halt is node 4).
	if !d.G.HasEdge(3, 4) {
		t.Error("store not ordered before terminator")
	}
}

func TestInOutCounts(t *testing.T) {
	// n0: t2 = a0+a1; n1: t3 = t2^a0; n2: t4 = t3+t2
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T2, prog.A0, prog.A1)
		b.R(isa.OpXOR, prog.T3, prog.T2, prog.A0)
		b.R(isa.OpADD, prog.T4, prog.T3, prog.T2)
	})
	all := graph.NodeSetOf(d.Len(), 0, 1, 2)
	if got := d.In(all); got != 2 {
		t.Errorf("In(all) = %d, want 2 ($a0, $a1)", got)
	}
	// Only n2's value would escape — but nothing is live out (halt), and no
	// outside consumer exists.
	if got := d.Out(all); got != 0 {
		t.Errorf("Out(all) = %d, want 0", got)
	}
	sub := graph.NodeSetOf(d.Len(), 0, 1)
	// Inputs: a0, a1 (a0 used twice but one distinct value).
	if got := d.In(sub); got != 2 {
		t.Errorf("In({0,1}) = %d, want 2", got)
	}
	// Both n0 and n1 feed n2 outside the set.
	if got := d.Out(sub); got != 2 {
		t.Errorf("Out({0,1}) = %d, want 2", got)
	}
	one := graph.NodeSetOf(d.Len(), 1)
	// Inputs of n1: value from n0 plus live-in a0.
	if got := d.In(one); got != 2 {
		t.Errorf("In({1}) = %d, want 2", got)
	}
}

func TestLiveOutMarking(t *testing.T) {
	// Value defined in block 0 and used in block 1 must be flagged.
	b := prog.NewBuilder("lo")
	b.R(isa.OpADD, prog.T0, prog.A0, prog.A1) // n0 defines live-out $t0
	b.R(isa.OpADD, prog.T1, prog.T0, prog.T0) // n1, $t1 dead
	b.Jump("next")
	b.Label("next")
	b.R(isa.OpADD, prog.V0, prog.T0, prog.Zero)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lv := prog.ComputeLiveness(p)
	d := Build(p, 0, 7, lv.LiveOut[0])
	if !d.Nodes[0].LiveOut {
		t.Error("live-out producer not marked")
	}
	if d.Nodes[1].LiveOut {
		t.Error("dead def marked live-out")
	}
	if d.Weight != 7 {
		t.Errorf("weight = %d", d.Weight)
	}
	// Out must count the live-out node even with no in-block consumer.
	s := graph.NodeSetOf(d.Len(), 0, 1)
	if got := d.Out(s); got != 1 {
		t.Errorf("Out = %d, want 1 (live-out $t0)", got)
	}
}

func TestEligibility(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1) // eligible
		b.Load(isa.OpLW, prog.T1, prog.SP, 0)     // not eligible
	})
	if !d.Nodes[0].ISEEligible() {
		t.Error("add not eligible")
	}
	if d.Nodes[1].ISEEligible() {
		t.Error("lw eligible")
	}
	if d.AllEligible(graph.NodeSetOf(d.Len(), 0, 1)) {
		t.Error("AllEligible true with a load inside")
	}
	if !d.AllEligible(graph.NodeSetOf(d.Len(), 0)) {
		t.Error("AllEligible false for {add}")
	}
}

func TestCriticalPathLen(t *testing.T) {
	// chain of 3 dependent adds plus 2 independent -> CP = 3 (+halt ordered
	// nowhere).
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
		b.R(isa.OpADD, prog.T1, prog.T0, prog.A0)
		b.R(isa.OpADD, prog.T2, prog.T1, prog.A0)
		b.R(isa.OpADD, prog.T3, prog.A2, prog.A3)
		b.R(isa.OpADD, prog.T4, prog.A2, prog.A3)
	})
	if got := d.CriticalPathLen(); got != 3 {
		t.Errorf("CriticalPathLen = %d, want 3", got)
	}
}

func TestGPlusTables(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
		b.Mult(isa.OpMULT, prog.A0, prog.A1)
	})
	if len(d.Nodes[0].SW) != 1 || len(d.Nodes[0].HW) != 2 {
		t.Errorf("add options: sw=%d hw=%d, want 1/2", len(d.Nodes[0].SW), len(d.Nodes[0].HW))
	}
	if len(d.Nodes[1].HW) != 1 {
		t.Errorf("mult hw options = %d, want 1", len(d.Nodes[1].HW))
	}
}

func TestBuildAllOnBenchmarks(t *testing.T) {
	// Every benchmark's hottest blocks must yield valid acyclic DFGs whose
	// structure is internally consistent.
	for _, bm := range bench.All() {
		prof, err := bm.Run()
		if err != nil {
			t.Fatal(err)
		}
		hot := prof.HotBlocks(bm.Prog, 3)
		dfgs := BuildAll(bm.Prog, hot, prof.BlockCounts)
		if len(dfgs) != len(hot) {
			t.Fatalf("%s: built %d DFGs for %d blocks", bm.FullName(), len(dfgs), len(hot))
		}
		for _, d := range dfgs {
			if !d.G.IsAcyclic() {
				t.Errorf("%s %s: cyclic DFG", bm.FullName(), d.Name)
			}
			if d.Weight == 0 {
				t.Errorf("%s %s: zero weight", bm.FullName(), d.Name)
			}
			if d.CriticalPathLen() < 1 || d.CriticalPathLen() > d.Len() {
				t.Errorf("%s %s: CP length %d out of range", bm.FullName(), d.Name, d.CriticalPathLen())
			}
			// Every data edge must also be a scheduling edge.
			for u := 0; u < d.Data.Len(); u++ {
				for _, v := range d.Data.Succs(u) {
					if !d.G.HasEdge(u, v) {
						t.Errorf("%s %s: data edge (%d,%d) missing from G", bm.FullName(), d.Name, u, v)
					}
				}
			}
		}
	}
}

func TestString(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
	})
	s := d.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String too short: %q", s)
	}
}

func TestDOTOutput(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
		b.R(isa.OpXOR, prog.T1, prog.T0, prog.A0)
		b.Load(isa.OpLW, prog.T2, prog.SP, 0)
	})
	var buf bytes.Buffer
	d.DOT(&buf, graph.NodeSetOf(d.Len(), 0, 1))
	s := buf.String()
	for _, frag := range []string{"digraph", "cluster_ise0", "n0 -> n1", "xor $t1, $t0, $a0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, s)
		}
	}
	// Ineligible load rendered grayed, outside the cluster.
	if !strings.Contains(s, "color=gray50") {
		t.Error("ineligible node not grayed")
	}
}

func TestReachesAndInterlocked(t *testing.T) {
	d := buildBlock(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1) // n0
		b.R(isa.OpXOR, prog.T1, prog.T0, prog.A0) // n1 <- n0
		b.R(isa.OpOR, prog.T2, prog.T1, prog.A1)  // n2 <- n1
		b.R(isa.OpAND, prog.T3, prog.A2, prog.A3) // n3 independent
	})
	a := graph.NodeSetOf(d.Len(), 0)
	b := graph.NodeSetOf(d.Len(), 2)
	if !d.Reaches(a, b) {
		t.Error("n0 should reach n2")
	}
	if d.Reaches(b, a) {
		t.Error("n2 should not reach n0")
	}
	if d.Interlocked(a, b) {
		t.Error("one-way dependence flagged as interlock")
	}
	// Interlock: {n0, n2} vs {n1}: n0->n1 and n1->n2.
	x := graph.NodeSetOf(d.Len(), 0, 2)
	y := graph.NodeSetOf(d.Len(), 1)
	if !d.Interlocked(x, y) {
		t.Error("mutual dependence not detected")
	}
	iso := graph.NodeSetOf(d.Len(), 3)
	if d.Reaches(iso, a) || d.Reaches(a, iso) {
		t.Error("independent node reaches")
	}
}
