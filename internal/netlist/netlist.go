// Package netlist lowers an explored ISE to a structural datapath netlist:
// one cell per member operation, wires for internal dataflow, module ports
// for the IN(S) operand reads and OUT(S) result writes. The netlist can be
// rendered as synthesizable-style Verilog (the form the paper's Table 5.1.1
// cells were synthesized from) and evaluated in Go, which lets the test
// suite prove the hardware datapath computes exactly what the replaced
// instruction sequence computed.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/isa"
	"repro/internal/prog"
)

// Port is a module input or output.
type Port struct {
	Name string
	// Width is 32 for register values, 64 for a HI:LO product output.
	Width int
	// Node is the producing member for outputs; -1 for inputs.
	Node int
}

// Cell is one datapath element.
type Cell struct {
	Node    int        // DFG node ID
	Op      isa.Opcode // function
	Variant string     // chosen hardware option name
	A, B    string     // input wire names ("" when the operand is an immediate)
	Imm     int32
	HasImm  bool
	Out     string // output wire name
	Width   int    // 64 for mult, else 32
}

// Module is a structural ISE datapath.
type Module struct {
	Name    string
	Inputs  []Port
	Outputs []Port
	Cells   []Cell // in topological order

	// inputOf maps each (member node, operand index) consuming an external
	// value to the input port name.
	inputOf map[[2]int]string
}

// FromISE builds the netlist of e within d. The module's input ports are the
// distinct external values IN(S) counts; outputs are the escaping member
// results OUT(S) counts.
func FromISE(d *dfg.DFG, e *core.ISE, name string) (*Module, error) {
	if e.Size() == 0 {
		return nil, fmt.Errorf("netlist: empty ISE")
	}
	m := &Module{Name: sanitize(name), inputOf: map[[2]int]string{}}

	// Distinct external sources -> input ports.
	type srcKey struct {
		producer int
		reg      prog.Reg
	}
	inName := map[srcKey]string{}
	members := e.Nodes.Values()
	for _, v := range members {
		for oi, src := range d.Nodes[v].Inputs {
			if src.Producer >= 0 && e.Nodes.Contains(src.Producer) {
				continue
			}
			k := srcKey{src.Producer, src.Reg}
			if src.Producer >= 0 {
				k.reg = 0
			}
			pn, ok := inName[k]
			if !ok {
				if src.Producer >= 0 {
					pn = fmt.Sprintf("in_n%d", src.Producer)
				} else {
					pn = "in_" + sanitize(src.Reg.String())
				}
				inName[k] = pn
				m.Inputs = append(m.Inputs, Port{Name: pn, Width: 32, Node: -1})
			}
			m.inputOf[[2]int{v, oi}] = pn
		}
	}
	sort.Slice(m.Inputs, func(i, j int) bool { return m.Inputs[i].Name < m.Inputs[j].Name })

	// Cells in topological (= ID) order; wire per member output.
	wire := func(v int) string { return fmt.Sprintf("w_n%d", v) }
	for _, v := range members {
		node := d.Nodes[v]
		opt := node.HW[e.Option[v]]
		c := Cell{
			Node:    v,
			Op:      node.Instr.Op,
			Variant: opt.Name,
			Imm:     node.Instr.Imm,
			HasImm:  isa.HasImmediate(node.Instr.Op),
			Out:     wire(v),
			Width:   32,
		}
		if node.Instr.Op == isa.OpMULT || node.Instr.Op == isa.OpMULTU {
			c.Width = 64
		}
		// Wire operands in the instruction's architectural order. Reads of
		// $zero are constant wires; node.Inputs (which skips $zero) is
		// consumed in step with the remaining uses.
		var operands []string
		ii := 0
		for _, r := range node.Instr.Uses() {
			if r == prog.Zero {
				operands = append(operands, "")
				continue
			}
			src := node.Inputs[ii]
			if src.Producer >= 0 && e.Nodes.Contains(src.Producer) {
				operands = append(operands, wire(src.Producer))
			} else {
				pn, ok := m.inputOf[[2]int{v, ii}]
				if !ok {
					return nil, fmt.Errorf("netlist: node %d operand %d unmapped", v, ii)
				}
				operands = append(operands, pn)
			}
			ii++
		}
		if len(operands) > 0 {
			c.A = operands[0]
		}
		if len(operands) > 1 {
			c.B = operands[1]
		}
		m.Cells = append(m.Cells, c)
	}

	// Outputs: escaping members.
	for _, v := range members {
		n := d.Nodes[v]
		escapes := n.LiveOut
		if !escapes {
			for _, s := range n.DataSuccs {
				if !e.Nodes.Contains(s) {
					escapes = true
					break
				}
			}
		}
		if !escapes {
			continue
		}
		w := 32
		if n.Instr.Op == isa.OpMULT || n.Instr.Op == isa.OpMULTU {
			w = 64
		}
		m.Outputs = append(m.Outputs, Port{Name: fmt.Sprintf("out_n%d", v), Width: w, Node: v})
	}
	return m, nil
}

// Eval computes the module outputs from input port values (32-bit each).
// It is the functional model of the ASFU datapath.
func (m *Module) Eval(inputs map[string]uint32) (map[string]uint64, error) {
	val := map[string]uint64{}
	for _, p := range m.Inputs {
		v, ok := inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("netlist: missing input %s", p.Name)
		}
		val[p.Name] = uint64(v)
	}
	get := func(w string) uint32 {
		if w == "" {
			return 0 // $zero-sourced operand
		}
		return uint32(val[w])
	}
	for _, c := range m.Cells {
		out, err := isa.Compute(c.Op, get(c.A), get(c.B), c.Imm)
		if err != nil {
			return nil, fmt.Errorf("netlist: cell n%d: %w", c.Node, err)
		}
		val[c.Out] = out
	}
	outs := map[string]uint64{}
	for _, p := range m.Outputs {
		outs[p.Name] = val[fmt.Sprintf("w_n%d", p.Node)]
	}
	return outs, nil
}

// Verilog renders the module as structural/dataflow Verilog.
func (m *Module) Verilog() string {
	var sb strings.Builder
	var ports []string
	for _, p := range m.Inputs {
		ports = append(ports, p.Name)
	}
	for _, p := range m.Outputs {
		ports = append(ports, p.Name)
	}
	fmt.Fprintf(&sb, "// ASFU datapath generated from ISE exploration\n")
	fmt.Fprintf(&sb, "module %s(%s);\n", m.Name, strings.Join(ports, ", "))
	for _, p := range m.Inputs {
		fmt.Fprintf(&sb, "  input  [%d:0] %s;\n", p.Width-1, p.Name)
	}
	for _, p := range m.Outputs {
		fmt.Fprintf(&sb, "  output [%d:0] %s;\n", p.Width-1, p.Name)
	}
	for _, c := range m.Cells {
		fmt.Fprintf(&sb, "  wire   [%d:0] %s; // %s (%s)\n", c.Width-1, c.Out, c.Op, c.Variant)
	}
	sb.WriteString("\n")
	for _, c := range m.Cells {
		fmt.Fprintf(&sb, "  assign %s = %s;\n", c.Out, c.expr())
	}
	for _, p := range m.Outputs {
		fmt.Fprintf(&sb, "  assign %s = w_n%d;\n", p.Name, p.Node)
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

// expr renders the cell's dataflow expression.
func (c *Cell) expr() string {
	a := c.A
	if a == "" {
		a = "32'd0"
	}
	b := c.B
	if b == "" {
		b = "32'd0"
	}
	imm := fmt.Sprintf("32'd%d", uint32(c.Imm))
	imm16 := fmt.Sprintf("32'd%d", uint32(c.Imm)&0xffff)
	sh := fmt.Sprintf("%d", uint32(c.Imm)&31)
	switch c.Op {
	case isa.OpADD, isa.OpADDU:
		return a + " + " + b
	case isa.OpADDI, isa.OpADDIU:
		return a + " + " + imm
	case isa.OpSUB, isa.OpSUBU:
		return a + " - " + b
	case isa.OpMULT:
		return fmt.Sprintf("$signed(%s) * $signed(%s)", a, b)
	case isa.OpMULTU:
		return a + " * " + b
	case isa.OpAND:
		return a + " & " + b
	case isa.OpANDI:
		return a + " & " + imm16
	case isa.OpOR:
		return a + " | " + b
	case isa.OpORI:
		return a + " | " + imm16
	case isa.OpXOR:
		return a + " ^ " + b
	case isa.OpXORI:
		return a + " ^ " + imm16
	case isa.OpNOR:
		return fmt.Sprintf("~(%s | %s)", a, b)
	case isa.OpSLT:
		return fmt.Sprintf("$signed(%s) < $signed(%s)", a, b)
	case isa.OpSLTI:
		return fmt.Sprintf("$signed(%s) < $signed(%s)", a, imm)
	case isa.OpSLTU:
		return a + " < " + b
	case isa.OpSLTIU:
		return a + " < " + imm
	case isa.OpSLL:
		return a + " << " + sh
	case isa.OpSLLV:
		return fmt.Sprintf("%s << %s[4:0]", a, b)
	case isa.OpSRL:
		return a + " >> " + sh
	case isa.OpSRLV:
		return fmt.Sprintf("%s >> %s[4:0]", a, b)
	case isa.OpSRA:
		return fmt.Sprintf("$signed(%s) >>> %s", a, sh)
	case isa.OpSRAV:
		return fmt.Sprintf("$signed(%s) >>> %s[4:0]", a, b)
	}
	return "/* unsupported */ 32'dx"
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "m_" + out
	}
	return out
}
