package netlist

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/graph"
	"repro/internal/isa"
	"repro/internal/prog"
)

func blockDFG(t *testing.T, emit func(b *prog.Builder)) *dfg.DFG {
	t.Helper()
	b := prog.NewBuilder("t")
	emit(b)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lv := prog.ComputeLiveness(p)
	return dfg.Build(p, 0, 1, lv.LiveOut[0])
}

// crcStepDFG is the canonical CRC bit-step: the 5-op ISE of the paper's
// domain.
func crcStepDFG(t *testing.T) *dfg.DFG {
	return blockDFG(t, func(b *prog.Builder) {
		b.I(isa.OpANDI, prog.T1, prog.S3, 1)        // n0
		b.R(isa.OpSUB, prog.T2, prog.Zero, prog.T1) // n1
		b.I(isa.OpSRL, prog.T3, prog.S3, 1)         // n2
		b.R(isa.OpAND, prog.T2, prog.S2, prog.T2)   // n3
		b.R(isa.OpXOR, prog.T4, prog.T3, prog.T2)   // n4
	})
}

func TestFromISECRCStep(t *testing.T) {
	d := crcStepDFG(t)
	ise := core.NewISE(d, graph.NodeSetOf(d.Len(), 0, 1, 2, 3, 4), map[int]int{})
	m, err := FromISE(d, ise, "crc_step")
	if err != nil {
		t.Fatal(err)
	}
	// Two external inputs: $s3 (crc) and $s2 (poly).
	if len(m.Inputs) != 2 {
		t.Fatalf("inputs = %v, want 2", m.Inputs)
	}
	// One escaping output: the xor (live-out $t4... nothing is live out of a
	// halt block, and no outside consumer exists, so outputs may be empty).
	// Force the check through a version with a consumer below.
	if len(m.Cells) != 5 {
		t.Fatalf("cells = %d, want 5", len(m.Cells))
	}

	// Functional check: crc = 0xDEADBEEF, poly = 0xEDB88320.
	crc, poly := uint32(0xDEADBEEF), uint32(0xEDB88320)
	outs, err := m.Eval(map[string]uint32{"in__s3": crc, "in__s2": poly})
	if err != nil {
		t.Fatal(err)
	}
	_ = outs // outputs empty: value checked via the consumer variant below
	// With a consumer: n5 uses the xor result.
	d2 := blockDFG(t, func(b *prog.Builder) {
		b.I(isa.OpANDI, prog.T1, prog.S3, 1)
		b.R(isa.OpSUB, prog.T2, prog.Zero, prog.T1)
		b.I(isa.OpSRL, prog.T3, prog.S3, 1)
		b.R(isa.OpAND, prog.T2, prog.S2, prog.T2)
		b.R(isa.OpXOR, prog.T4, prog.T3, prog.T2)
		b.R(isa.OpOR, prog.V0, prog.T4, prog.Zero) // external consumer
	})
	ise2 := core.NewISE(d2, graph.NodeSetOf(d2.Len(), 0, 1, 2, 3, 4), map[int]int{})
	m2, err := FromISE(d2, ise2, "crc_step2")
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Outputs) != 1 || m2.Outputs[0].Node != 4 {
		t.Fatalf("outputs = %v, want the xor node", m2.Outputs)
	}
	outs, err = m2.Eval(map[string]uint32{"in__s3": crc, "in__s2": poly})
	if err != nil {
		t.Fatal(err)
	}
	mask := -(crc & 1)
	want := (crc >> 1) ^ (poly & mask)
	if got := uint32(outs["out_n4"]); got != want {
		t.Fatalf("crc step = %#x, want %#x", got, want)
	}
}

func TestVerilogRendersStructure(t *testing.T) {
	d := crcStepDFG(t)
	ise := core.NewISE(d, graph.NodeSetOf(d.Len(), 0, 1, 2, 3, 4), map[int]int{})
	m, err := FromISE(d, ise, "crc-step!") // name needs sanitizing
	if err != nil {
		t.Fatal(err)
	}
	v := m.Verilog()
	for _, frag := range []string{
		"module crc_step_(",
		"input  [31:0] in__s3",
		"assign w_n0 = in__s3 & 32'd1;",
		"assign w_n1 = 32'd0 - w_n0;", // $zero-sourced subtrahend
		"assign w_n2 = in__s3 >> 1;",
		"assign w_n4 = w_n2 ^ w_n3;",
		"endmodule",
	} {
		if !strings.Contains(v, frag) {
			t.Errorf("verilog missing %q:\n%s", frag, v)
		}
	}
}

func TestMultCellIs64Bit(t *testing.T) {
	d := blockDFG(t, func(b *prog.Builder) {
		b.R(isa.OpADD, prog.T0, prog.A0, prog.A1)
		b.Mult(isa.OpMULTU, prog.T0, prog.A0)
		b.MoveFrom(isa.OpMFLO, prog.T1) // external consumer of HILO
	})
	ise := core.NewISE(d, graph.NodeSetOf(d.Len(), 0, 1), map[int]int{})
	m, err := FromISE(d, ise, "mac")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Outputs) != 1 || m.Outputs[0].Width != 64 {
		t.Fatalf("outputs = %+v, want one 64-bit", m.Outputs)
	}
	outs, err := m.Eval(map[string]uint32{"in__a0": 0x10000, "in__a1": 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	// (a0+a1) * a0 = 0x20000 * 0x10000 = 2^33.
	if got := outs["out_n1"]; got != 1<<33 {
		t.Fatalf("product = %#x, want 2^33", got)
	}
	if !strings.Contains(m.Verilog(), "wire   [63:0] w_n1") {
		t.Error("64-bit wire missing from verilog")
	}
}

func TestEvalMissingInput(t *testing.T) {
	d := crcStepDFG(t)
	ise := core.NewISE(d, graph.NodeSetOf(d.Len(), 0, 1, 2, 3, 4), map[int]int{})
	m, err := FromISE(d, ise, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Eval(map[string]uint32{"in__s3": 1}); err == nil {
		t.Fatal("missing input accepted")
	}
}

// ssaBlock emits n random eligible ops, each writing a fresh register, with
// sources drawn from earlier results or the live-in pool — so every value
// has a unique home and replay is unambiguous.
func ssaBlock(t *testing.T, r *rand.Rand, n int) *dfg.DFG {
	t.Helper()
	liveIn := []prog.Reg{prog.A0, prog.A1, prog.A2, prog.A3, prog.K0, prog.K1}
	fresh := []prog.Reg{
		prog.T0, prog.T1, prog.T2, prog.T3, prog.T4, prog.T5, prog.T6, prog.T7,
		prog.T8, prog.T9, prog.S0, prog.S1, prog.S2, prog.S3, prog.S4, prog.S5,
		prog.S6, prog.S7, prog.V0, prog.V1, prog.GP, prog.FP, prog.SP, prog.RA,
	}
	if n > len(fresh) {
		n = len(fresh)
	}
	rOps := []isa.Opcode{isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOR, isa.OpSLTU, isa.OpSLLV, isa.OpSRAV}
	iOps := []isa.Opcode{isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI, isa.OpSRL, isa.OpSLL}
	return blockDFG(t, func(b *prog.Builder) {
		var defined []prog.Reg
		pickSrc := func() prog.Reg {
			pool := append(append([]prog.Reg(nil), liveIn...), defined...)
			return pool[r.Intn(len(pool))]
		}
		for i := 0; i < n; i++ {
			dst := fresh[i]
			if r.Intn(3) == 0 {
				b.I(iOps[r.Intn(len(iOps))], dst, pickSrc(), int32(r.Intn(30)+1))
			} else {
				b.R(rOps[r.Intn(len(rOps))], dst, pickSrc(), pickSrc())
			}
			defined = append(defined, dst)
		}
	})
}

// evalBlock interprets the whole block with isa.Compute over the
// instruction's architectural operands — an independent oracle for the
// netlist's wiring.
func evalBlock(t *testing.T, d *dfg.DFG, regs map[prog.Reg]uint32) []uint64 {
	t.Helper()
	vals := make([]uint64, d.Len())
	cur := map[prog.Reg]uint32{}
	for k, v := range regs {
		cur[k] = v
	}
	for i, n := range d.Nodes {
		in := n.Instr
		if in.Op == isa.OpHALT {
			continue
		}
		uses := in.Uses()
		var a, b uint32
		if len(uses) > 0 {
			a = cur[uses[0]]
		}
		if len(uses) > 1 {
			b = cur[uses[1]]
		}
		v, err := isa.Compute(in.Op, a, b, in.Imm)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		vals[i] = v
		if dst, ok := in.Defs(); ok {
			cur[dst] = uint32(v)
		}
	}
	return vals
}

// TestPropertyNetlistMatchesInterpreter: for random SSA blocks and random
// convex subsets, the netlist evaluates to exactly the values the
// instruction sequence produces.
func TestPropertyNetlistMatchesInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 80; trial++ {
		d := ssaBlock(t, r, 4+r.Intn(16))
		// Random convex subset of eligible nodes.
		set := graph.NewNodeSet(d.Len())
		for v := 0; v < d.Len(); v++ {
			if d.Nodes[v].ISEEligible() && r.Intn(2) == 0 {
				set.Add(v)
			}
		}
		parts := core.MakeConvex(d, set)
		if len(parts) == 0 {
			continue
		}
		part := parts[r.Intn(len(parts))]
		if part.Empty() {
			continue
		}
		ise := core.NewISE(d, part, map[int]int{})
		m, err := FromISE(d, ise, "rand")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Random live-in registers; node values from the oracle.
		regs := map[prog.Reg]uint32{}
		for _, reg := range []prog.Reg{prog.A0, prog.A1, prog.A2, prog.A3, prog.K0, prog.K1} {
			regs[reg] = r.Uint32()
		}
		vals := evalBlock(t, d, regs)

		// Feed the module's inputs from the oracle's view.
		inputs := map[string]uint32{}
		for _, p := range m.Inputs {
			switch {
			case strings.HasPrefix(p.Name, "in_n"):
				producer, err := parseInt(strings.TrimPrefix(p.Name, "in_n"))
				if err != nil {
					t.Fatalf("trial %d: port %q: %v", trial, p.Name, err)
				}
				inputs[p.Name] = uint32(vals[producer])
			default:
				reg, ok := regByName("$" + strings.TrimPrefix(p.Name, "in__"))
				if !ok {
					t.Fatalf("trial %d: unknown port %q", trial, p.Name)
				}
				inputs[p.Name] = regs[reg]
			}
		}
		outs, err := m.Eval(inputs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, p := range m.Outputs {
			if got, want := outs[p.Name], vals[p.Node]; got != want {
				t.Fatalf("trial %d: %s = %#x, oracle %#x\n%s\n%s",
					trial, p.Name, got, want, d, m.Verilog())
			}
		}
	}
}

func parseInt(s string) (int, error) {
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	x := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit %q", c)
		}
		x = x*10 + int(c-'0')
	}
	return x, nil
}

func regByName(name string) (prog.Reg, bool) {
	for r := prog.Reg(0); int(r) < prog.NumRegs; r++ {
		if r.String() == name {
			return r, true
		}
	}
	return 0, false
}
