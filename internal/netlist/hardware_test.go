package netlist

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dfg"
	"repro/internal/machine"
	"repro/internal/vm"
)

// iseModule pairs an explored ISE with its lowered datapath.
type iseModule struct {
	ise *core.ISE
	m   *Module
}

// TestISEHardwareMatchesRealExecution is the strongest validation in the
// repository: explore ISEs on real benchmarks, lower each to its ASFU
// netlist, re-run the benchmark on the interpreter with value tracing, and
// check — for every dynamic execution of the customized block — that the
// hardware datapath computes bit-for-bit the values the replaced software
// instructions computed.
func TestISEHardwareMatchesRealExecution(t *testing.T) {
	cfg := machine.New(2, 4, 2)
	for _, name := range []string{"crc32", "sha", "rijndael", "bitcount"} {
		for _, opt := range bench.Opts() {
			bm, err := bench.Get(name, opt)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := bm.Run()
			if err != nil {
				t.Fatal(err)
			}
			hot := prof.HotBlocks(bm.Prog, 1)
			d := dfg.BuildAll(bm.Prog, hot, prof.BlockCounts)[0]
			res, err := core.ExploreWithParams(d, cfg, core.FastParams())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.ISEs) == 0 {
				continue
			}
			checks := traceAndCheck(t, bm, d, res.ISEs)
			if checks == 0 {
				t.Errorf("%s: no dynamic checks performed", bm.FullName())
			}
		}
	}
}

// traceAndCheck runs the benchmark under tracing and validates every ISE's
// netlist on every dynamic execution of the hot block. It returns the number
// of (execution × ISE) checks performed.
func traceAndCheck(t *testing.T, bm *bench.Benchmark, d *dfg.DFG, ises []*core.ISE) int {
	t.Helper()
	var mods []iseModule
	for i, e := range ises {
		m, err := FromISE(d, e, "chk")
		if err != nil {
			t.Fatalf("%s ISE %d: %v", bm.FullName(), i, err)
		}
		mods = append(mods, iseModule{e, m})
	}

	machineVM := vm.NewMachine(bench.MemSize)
	if err := bm.Setup(machineVM); err != nil {
		t.Fatal(err)
	}
	current := make([]uint64, d.Len())
	snapshot := map[string]uint32{}
	checks := 0

	// At block entry, sample every live-in input port from the register
	// file (a live-in operand is by definition not redefined in the block
	// before its use, so the entry value is the value the ASFU would read).
	machineVM.TraceBlock = func(block int) {
		if block != d.BlockIndex {
			return
		}
		for _, md := range mods {
			for _, p := range md.m.Inputs {
				if !strings.HasPrefix(p.Name, "in__") {
					continue
				}
				r, ok := regByName("$" + strings.TrimPrefix(p.Name, "in__"))
				if !ok {
					t.Fatalf("unknown port %q", p.Name)
				}
				snapshot[p.Name] = machineVM.Reg(r)
			}
		}
	}
	machineVM.Trace = func(block, instr int, value uint64) {
		if block != d.BlockIndex {
			return
		}
		current[instr] = value
		if instr != d.Len()-1 {
			return
		}
		// Block complete: evaluate every ISE against the traced values.
		for _, md := range mods {
			inputs := map[string]uint32{}
			for _, p := range md.m.Inputs {
				if strings.HasPrefix(p.Name, "in_n") {
					producer, err := parseInt(strings.TrimPrefix(p.Name, "in_n"))
					if err != nil {
						t.Fatalf("port %q: %v", p.Name, err)
					}
					inputs[p.Name] = uint32(current[producer])
				} else {
					inputs[p.Name] = snapshot[p.Name]
				}
			}
			outs, err := md.m.Eval(inputs)
			if err != nil {
				t.Fatalf("%s: %v", bm.FullName(), err)
			}
			for _, p := range md.m.Outputs {
				if got, want := outs[p.Name], current[p.Node]; got != want {
					t.Fatalf("%s: ISE output %s = %#x, software computed %#x\n%s",
						bm.FullName(), p.Name, got, want, md.m.Verilog())
				}
			}
			checks++
		}
	}
	if _, err := machineVM.Run(bm.Prog, bench.MaxSteps); err != nil {
		t.Fatal(err)
	}
	return checks
}
