package vm

import (
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// run assembles and executes the instructions produced by build, returning
// the machine and profile for inspection.
func run(t *testing.T, build func(b *prog.Builder)) (*Machine, *Profile, *prog.Program) {
	t.Helper()
	b := prog.NewBuilder("t")
	build(b)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(4096)
	prof, err := m.Run(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return m, prof, p
}

func TestALUOps(t *testing.T) {
	m, _, _ := run(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 12)
		b.I(isa.OpORI, prog.T1, prog.Zero, 5)
		b.R(isa.OpADD, prog.T2, prog.T0, prog.T1)   // 17
		b.R(isa.OpSUB, prog.T3, prog.T0, prog.T1)   // 7
		b.R(isa.OpAND, prog.T4, prog.T0, prog.T1)   // 4
		b.R(isa.OpOR, prog.T5, prog.T0, prog.T1)    // 13
		b.R(isa.OpXOR, prog.T6, prog.T0, prog.T1)   // 9
		b.R(isa.OpNOR, prog.T7, prog.T0, prog.T1)   // ^13
		b.I(isa.OpADDI, prog.T8, prog.T0, -20)      // -8
		b.R(isa.OpSLT, prog.T9, prog.T8, prog.Zero) // 1 (signed)
		b.R(isa.OpSLTU, prog.S0, prog.T8, prog.Zero)
		b.Halt()
	})
	want := map[prog.Reg]uint32{
		prog.T2: 17, prog.T3: 7, prog.T4: 4, prog.T5: 13, prog.T6: 9,
		prog.T7: ^uint32(13), prog.T8: uint32(0xfffffff8), prog.T9: 1, prog.S0: 0,
	}
	for r, w := range want {
		if got := m.Reg(r); got != w {
			t.Errorf("%v = %#x, want %#x", r, got, w)
		}
	}
}

func TestShifts(t *testing.T) {
	m, _, _ := run(t, func(b *prog.Builder) {
		b.LI(prog.T0, 0x80000010)
		b.I(isa.OpSLL, prog.T1, prog.T0, 3)
		b.I(isa.OpSRL, prog.T2, prog.T0, 4)
		b.I(isa.OpSRA, prog.T3, prog.T0, 4)
		b.I(isa.OpORI, prog.T4, prog.Zero, 8)
		b.R(isa.OpSLLV, prog.T5, prog.T0, prog.T4)
		b.R(isa.OpSRLV, prog.T6, prog.T0, prog.T4)
		b.R(isa.OpSRAV, prog.T7, prog.T0, prog.T4)
		b.Halt()
	})
	want := map[prog.Reg]uint32{
		prog.T1: 0x80,
		prog.T2: 0x08000001,
		prog.T3: 0xf8000001,
		prog.T5: 0x1000,
		prog.T6: 0x00800000,
		prog.T7: 0xff800000,
	}
	for r, w := range want {
		if got := m.Reg(r); got != w {
			t.Errorf("%v = %#x, want %#x", r, got, w)
		}
	}
}

func TestMultHILO(t *testing.T) {
	m, _, _ := run(t, func(b *prog.Builder) {
		b.LI(prog.T0, 0x10000) // 65536
		b.I(isa.OpORI, prog.T1, prog.Zero, 3)
		b.Mult(isa.OpMULTU, prog.T0, prog.T0) // 2^32 -> HI=1 LO=0
		b.MoveFrom(isa.OpMFHI, prog.T2)
		b.MoveFrom(isa.OpMFLO, prog.T3)
		b.I(isa.OpADDI, prog.T4, prog.Zero, -2)
		b.Mult(isa.OpMULT, prog.T4, prog.T1) // -6
		b.MoveFrom(isa.OpMFLO, prog.T5)
		b.MoveFrom(isa.OpMFHI, prog.T6)
		b.Halt()
	})
	if m.Reg(prog.T2) != 1 || m.Reg(prog.T3) != 0 {
		t.Errorf("multu 65536*65536: HI=%d LO=%d, want 1,0", m.Reg(prog.T2), m.Reg(prog.T3))
	}
	if got := int32(m.Reg(prog.T5)); got != -6 {
		t.Errorf("mult -2*3 lo = %d, want -6", got)
	}
	if m.Reg(prog.T6) != 0xffffffff {
		t.Errorf("mult -2*3 hi = %#x, want sign extension", m.Reg(prog.T6))
	}
}

func TestMemoryOps(t *testing.T) {
	m, _, _ := run(t, func(b *prog.Builder) {
		b.LI(prog.T0, 0xdeadbeef)
		b.I(isa.OpORI, prog.SP, prog.Zero, 128)
		b.Store(isa.OpSW, prog.T0, prog.SP, 8)
		b.Load(isa.OpLW, prog.T1, prog.SP, 8)
		b.Load(isa.OpLBU, prog.T2, prog.SP, 8)  // 0xef
		b.Load(isa.OpLB, prog.T3, prog.SP, 8)   // sign-extended 0xef
		b.Store(isa.OpSB, prog.T0, prog.SP, 20) // low byte only
		b.Load(isa.OpLBU, prog.T4, prog.SP, 20)
		b.Halt()
	})
	if m.Reg(prog.T1) != 0xdeadbeef {
		t.Errorf("lw = %#x", m.Reg(prog.T1))
	}
	if m.Reg(prog.T2) != 0xef {
		t.Errorf("lbu = %#x", m.Reg(prog.T2))
	}
	if m.Reg(prog.T3) != 0xffffffef {
		t.Errorf("lb = %#x", m.Reg(prog.T3))
	}
	if m.Reg(prog.T4) != 0xef {
		t.Errorf("sb/lbu = %#x", m.Reg(prog.T4))
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m, _, _ := run(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.Zero, prog.Zero, 99)
		b.R(isa.OpADD, prog.T0, prog.Zero, prog.Zero)
		b.Halt()
	})
	if m.Reg(prog.Zero) != 0 || m.Reg(prog.T0) != 0 {
		t.Fatalf("$zero = %d, $t0 = %d", m.Reg(prog.Zero), m.Reg(prog.T0))
	}
}

func TestLoopProfile(t *testing.T) {
	_, prof, _ := run(t, func(b *prog.Builder) {
		b.I(isa.OpORI, prog.T0, prog.Zero, 10)
		b.Label("loop")
		b.I(isa.OpADDI, prog.T0, prog.T0, -1)
		b.Branch(isa.OpBNE, prog.T0, prog.Zero, "loop")
		b.Halt()
	})
	want := []uint64{1, 10, 1}
	if !reflect.DeepEqual(prof.BlockCounts, want) {
		t.Fatalf("BlockCounts = %v, want %v", prof.BlockCounts, want)
	}
	if prof.DynInstrs != 1+20+1 {
		t.Fatalf("DynInstrs = %d, want 22", prof.DynInstrs)
	}
}

func TestBranchVariants(t *testing.T) {
	// Each branch kind is tested taken and not-taken by counting visits.
	m, _, _ := run(t, func(b *prog.Builder) {
		b.I(isa.OpADDI, prog.T0, prog.Zero, -1)
		// bltz taken
		b.Branch1(isa.OpBLTZ, prog.T0, "a")
		b.I(isa.OpORI, prog.S0, prog.Zero, 1) // must be skipped
		b.Label("a")
		// bgez not taken for -1
		b.Branch1(isa.OpBGEZ, prog.T0, "bad")
		// blez taken for 0
		b.Branch1(isa.OpBLEZ, prog.Zero, "c")
		b.Label("bad")
		b.I(isa.OpORI, prog.S1, prog.Zero, 1)
		b.Label("c")
		// bgtz not taken for 0
		b.Branch1(isa.OpBGTZ, prog.Zero, "bad2")
		b.I(isa.OpORI, prog.S2, prog.Zero, 1)
		b.Label("bad2")
		b.Halt()
	})
	if m.Reg(prog.S0) != 0 {
		t.Error("bltz fell through when it should be taken")
	}
	if m.Reg(prog.S1) != 0 {
		t.Error("bgez/blez routing wrong")
	}
	if m.Reg(prog.S2) != 1 {
		t.Error("bgtz taken when it should fall through")
	}
}

func TestStepLimit(t *testing.T) {
	b := prog.NewBuilder("inf")
	b.Label("x")
	b.Jump("x")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(64)
	if _, err := m.Run(p, 100); err == nil {
		t.Fatal("infinite loop did not hit the step limit")
	}
}

func TestMemoryFaults(t *testing.T) {
	m := NewMachine(16)
	if _, err := m.LoadWord(16); err == nil {
		t.Error("out-of-range word read succeeded")
	}
	if _, err := m.LoadWord(2); err == nil {
		t.Error("unaligned word read succeeded")
	}
	if err := m.StoreWord(1000, 1); err == nil {
		t.Error("out-of-range word write succeeded")
	}
	if _, err := m.LoadByte(16); err == nil {
		t.Error("out-of-range byte read succeeded")
	}
	if err := m.StoreByte(99, 0); err == nil {
		t.Error("out-of-range byte write succeeded")
	}
	if err := m.StoreBytes(10, make([]byte, 10)); err == nil {
		t.Error("out-of-range block write succeeded")
	}
}

func TestRunReportsMemoryFault(t *testing.T) {
	b := prog.NewBuilder("fault")
	b.LI(prog.T0, 1<<20)
	b.Load(isa.OpLW, prog.T1, prog.T0, 0)
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(64)
	if _, err := m.Run(p, 100); err == nil {
		t.Fatal("load beyond memory did not fail")
	}
}

func TestReset(t *testing.T) {
	m := NewMachine(8)
	m.SetReg(prog.T0, 7)
	if err := m.StoreByte(3, 9); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.Reg(prog.T0) != 0 {
		t.Error("register survived Reset")
	}
	if b, _ := m.LoadByte(3); b != 0 {
		t.Error("memory survived Reset")
	}
}

func TestHotBlocks(t *testing.T) {
	// Two nested loops: the inner block dominates.
	b := prog.NewBuilder("nest")
	b.I(isa.OpORI, prog.T0, prog.Zero, 3) // outer counter
	b.Label("outer")
	b.I(isa.OpORI, prog.T1, prog.Zero, 5) // inner counter
	b.Label("inner")
	b.I(isa.OpADDI, prog.T1, prog.T1, -1)
	b.Branch(isa.OpBNE, prog.T1, prog.Zero, "inner")
	b.I(isa.OpADDI, prog.T0, prog.T0, -1)
	b.Branch(isa.OpBNE, prog.T0, prog.Zero, "outer")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(64)
	prof, err := m.Run(p, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	inner, _ := p.BlockByLabel("inner")
	hot := prof.HotBlocks(p, 1)
	if len(hot) != 1 || hot[0] != inner {
		t.Fatalf("HotBlocks = %v, want [%d]", hot, inner)
	}
	all := prof.HotBlocks(p, 100)
	if len(all) == 0 || all[0] != inner {
		t.Fatalf("HotBlocks(all) = %v, inner %d must rank first", all, inner)
	}
}
