// Package vm interprets PISA programs and collects execution profiles. It
// replaces the SimpleScalar profiling run of the paper's toolchain: the
// design flow needs per-basic-block execution counts to weight each block's
// contribution to total execution time and to pick hot blocks for ISE
// exploration.
package vm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Machine is a PISA interpreter: a register file, the HI:LO multiply
// register, and a flat little-endian byte-addressable memory.
type Machine struct {
	regs [prog.NumRegs]uint32
	hilo uint64
	mem  []byte

	// Trace, when non-nil, is called after every executed instruction with
	// the block index, the instruction's index within the block, and the
	// value produced (the full 64-bit HI:LO for mult/multu; 0 for
	// instructions that define nothing). It enables value-level validation
	// of ISE datapaths against real executions.
	Trace func(block, instr int, value uint64)
	// TraceBlock, when non-nil, is called on every basic-block entry before
	// its first instruction executes.
	TraceBlock func(block int)
}

// NewMachine returns a machine with memSize bytes of zeroed memory.
func NewMachine(memSize int) *Machine {
	return &Machine{mem: make([]byte, memSize)}
}

// Reset zeroes registers, HI:LO and memory.
func (m *Machine) Reset() {
	m.regs = [prog.NumRegs]uint32{}
	m.hilo = 0
	for i := range m.mem {
		m.mem[i] = 0
	}
}

// Reg returns the value of register r ($zero always reads 0).
func (m *Machine) Reg(r prog.Reg) uint32 {
	if r == prog.Zero {
		return 0
	}
	return m.regs[r]
}

// SetReg writes register r; writes to $zero are discarded.
func (m *Machine) SetReg(r prog.Reg, v uint32) {
	if r == prog.Zero {
		return
	}
	m.regs[r] = v
}

// MemSize returns the memory size in bytes.
func (m *Machine) MemSize() int { return len(m.mem) }

// LoadWord loads the 32-bit little-endian word at addr.
func (m *Machine) LoadWord(addr uint32) (uint32, error) {
	if int(addr)+4 > len(m.mem) || addr%4 != 0 {
		return 0, fmt.Errorf("vm: bad word read at 0x%x", addr)
	}
	return binary.LittleEndian.Uint32(m.mem[addr:]), nil
}

// StoreWord stores the 32-bit little-endian word v at addr.
func (m *Machine) StoreWord(addr, v uint32) error {
	if int(addr)+4 > len(m.mem) || addr%4 != 0 {
		return fmt.Errorf("vm: bad word write at 0x%x", addr)
	}
	binary.LittleEndian.PutUint32(m.mem[addr:], v)
	return nil
}

// LoadByte loads the byte at addr.
func (m *Machine) LoadByte(addr uint32) (byte, error) {
	if int(addr) >= len(m.mem) {
		return 0, fmt.Errorf("vm: bad byte read at 0x%x", addr)
	}
	return m.mem[addr], nil
}

// StoreByte stores b at addr.
func (m *Machine) StoreByte(addr uint32, b byte) error {
	if int(addr) >= len(m.mem) {
		return fmt.Errorf("vm: bad byte write at 0x%x", addr)
	}
	m.mem[addr] = b
	return nil
}

// StoreBytes copies data into memory starting at addr.
func (m *Machine) StoreBytes(addr uint32, data []byte) error {
	if int(addr)+len(data) > len(m.mem) {
		return fmt.Errorf("vm: bad block write at 0x%x (+%d)", addr, len(data))
	}
	copy(m.mem[addr:], data)
	return nil
}

// Profile records the dynamic behaviour of one Run.
type Profile struct {
	// BlockCounts[i] is how many times basic block i was entered.
	BlockCounts []uint64
	// DynInstrs is the total number of instructions executed.
	DynInstrs uint64
}

// HotBlocks returns block indices sorted by descending dynamic instruction
// contribution (count × static length), limited to at most n blocks with
// non-zero counts. This is the paper's "basic block selection based on
// execution time".
func (pr *Profile) HotBlocks(p *prog.Program, n int) []int {
	type hb struct {
		idx  int
		work uint64
	}
	var hbs []hb
	for i, c := range pr.BlockCounts {
		if c == 0 {
			continue
		}
		hbs = append(hbs, hb{i, c * uint64(len(p.Blocks[i].Instrs))})
	}
	// Insertion sort by descending work, ascending index to stay stable.
	for i := 1; i < len(hbs); i++ {
		for j := i; j > 0 && (hbs[j].work > hbs[j-1].work ||
			(hbs[j].work == hbs[j-1].work && hbs[j].idx < hbs[j-1].idx)); j-- {
			hbs[j], hbs[j-1] = hbs[j-1], hbs[j]
		}
	}
	if n > len(hbs) {
		n = len(hbs)
	}
	out := make([]int, 0, n)
	for _, h := range hbs[:n] {
		out = append(out, h.idx)
	}
	return out
}

// Run executes p from its first block until halt, returning the profile.
// It fails if more than maxSteps instructions execute (runaway loop guard)
// or on a memory fault.
func (m *Machine) Run(p *prog.Program, maxSteps uint64) (*Profile, error) {
	prof := &Profile{BlockCounts: make([]uint64, len(p.Blocks))}
	bi := 0
	for {
		blk := p.Blocks[bi]
		prof.BlockCounts[bi]++
		if m.TraceBlock != nil {
			m.TraceBlock(bi)
		}
		next, halted, err := m.execBlock(p, blk, prof, maxSteps)
		if err != nil {
			return nil, fmt.Errorf("vm: %s block %s: %w", p.Name, blk.Name(), err)
		}
		if halted {
			return prof, nil
		}
		bi = next
	}
}

// execBlock runs every instruction of blk and returns the next block index.
func (m *Machine) execBlock(p *prog.Program, blk *prog.BasicBlock, prof *Profile, maxSteps uint64) (next int, halted bool, err error) {
	for ii, in := range blk.Instrs {
		prof.DynInstrs++
		if prof.DynInstrs > maxSteps {
			return 0, false, fmt.Errorf("step limit %d exceeded", maxSteps)
		}
		taken, halt, err := m.exec(in)
		if err != nil {
			return 0, false, err
		}
		if m.Trace != nil {
			var v uint64
			if in.Op == isa.OpMULT || in.Op == isa.OpMULTU {
				v = m.hilo
			} else if dst, ok := in.Defs(); ok {
				v = uint64(m.Reg(dst))
			}
			m.Trace(blk.Index, ii, v)
		}
		if halt {
			return 0, true, nil
		}
		if isa.IsBranch(in.Op) {
			ti, ok := p.BlockByLabel(in.Target)
			if in.Op == isa.OpJ {
				return ti, false, nil
			}
			if taken {
				if !ok {
					return 0, false, fmt.Errorf("undefined target %q", in.Target)
				}
				return ti, false, nil
			}
			// fall through
			return blk.Index + 1, false, nil
		}
	}
	// Block without explicit terminator cannot happen for valid programs,
	// but fall through defensively.
	return blk.Index + 1, false, nil
}

// exec performs one instruction. taken reports whether a conditional branch
// condition held.
func (m *Machine) exec(in prog.Instr) (taken, halt bool, err error) {
	s1 := m.Reg(in.Src1)
	s2 := m.Reg(in.Src2)
	imm := uint32(in.Imm)
	simm := int32(in.Imm)
	switch in.Op {
	case isa.OpADD, isa.OpADDU, isa.OpADDI, isa.OpADDIU, isa.OpSUB, isa.OpSUBU,
		isa.OpAND, isa.OpANDI, isa.OpOR, isa.OpORI, isa.OpXOR, isa.OpXORI, isa.OpNOR,
		isa.OpSLT, isa.OpSLTI, isa.OpSLTU, isa.OpSLTIU,
		isa.OpSLL, isa.OpSLLV, isa.OpSRL, isa.OpSRLV, isa.OpSRA, isa.OpSRAV:
		// Combinational operations share their semantics with the ASFU
		// netlist model through isa.Compute.
		v, err := isa.Compute(in.Op, s1, s2, in.Imm)
		if err != nil {
			return false, false, err
		}
		m.SetReg(in.Dst, uint32(v))
	case isa.OpMULT, isa.OpMULTU:
		v, err := isa.Compute(in.Op, s1, s2, 0)
		if err != nil {
			return false, false, err
		}
		m.hilo = v
	case isa.OpMFHI:
		m.SetReg(in.Dst, uint32(m.hilo>>32))
	case isa.OpMFLO:
		m.SetReg(in.Dst, uint32(m.hilo))
	case isa.OpLUI:
		m.SetReg(in.Dst, imm<<16)
	case isa.OpLW:
		v, err := m.LoadWord(s1 + uint32(simm))
		if err != nil {
			return false, false, err
		}
		m.SetReg(in.Dst, v)
	case isa.OpLB:
		b, err := m.LoadByte(s1 + uint32(simm))
		if err != nil {
			return false, false, err
		}
		m.SetReg(in.Dst, uint32(int32(int8(b))))
	case isa.OpLBU:
		b, err := m.LoadByte(s1 + uint32(simm))
		if err != nil {
			return false, false, err
		}
		m.SetReg(in.Dst, uint32(b))
	case isa.OpSW:
		if err := m.StoreWord(s1+uint32(simm), s2); err != nil {
			return false, false, err
		}
	case isa.OpSB:
		if err := m.StoreByte(s1+uint32(simm), byte(s2)); err != nil {
			return false, false, err
		}
	case isa.OpBEQ:
		return s1 == s2, false, nil
	case isa.OpBNE:
		return s1 != s2, false, nil
	case isa.OpBLEZ:
		return int32(s1) <= 0, false, nil
	case isa.OpBGTZ:
		return int32(s1) > 0, false, nil
	case isa.OpBLTZ:
		return int32(s1) < 0, false, nil
	case isa.OpBGEZ:
		return int32(s1) >= 0, false, nil
	case isa.OpJ:
		return true, false, nil
	case isa.OpHALT:
		return false, true, nil
	default:
		return false, false, fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	return false, false, nil
}
