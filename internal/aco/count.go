package aco

import "math/rand"

// CountingSource wraps the deterministic source behind NewRand and counts
// how many times the generator advanced. The count is the whole resume
// story for a checkpointed exploration: a restart's random stream is a pure
// function of (seed, draws consumed), so a snapshot needs to record only
// the draw count and a resumed run replays the stream exactly by skipping
// that many draws (math/rand's rngSource advances its state once per Int63
// or Uint64 call, so a source-level count is exact regardless of which
// rand.Rand methods consumed the draws, including rejection-sampling loops
// inside Intn).
//
// The wrapper forwards both Int63 and Uint64, preserving the Source64
// fast path, so rand.New(src) produces the byte-identical stream to
// NewRand(seed). Not safe for concurrent use — like rand.Rand itself, each
// exploration restart owns its generator.
type CountingSource struct {
	src   rand.Source64
	draws uint64
}

// NewCountedRand returns a generator with the same stream as NewRand(seed)
// plus the counting source that tracks its advancement.
func NewCountedRand(seed int64) (*rand.Rand, *CountingSource) {
	s := &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
	return rand.New(s), s
}

// Int63 forwards to the wrapped source, counting one advance.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 forwards to the wrapped source, counting one advance.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed reseeds the wrapped source and resets the draw count.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// Draws returns how many times the source has advanced since seeding.
func (s *CountingSource) Draws() uint64 {
	return s.draws
}

// Skip advances the source n times without exposing the values — the resume
// fast-forward. After Skip(n) on a fresh source, the generator is in the
// exact state a sibling reached after consuming n draws.
func (s *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.draws += n
}
