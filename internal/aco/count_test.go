package aco

import "testing"

// TestCountedRandMatchesNewRand proves the counting wrapper is invisible:
// the stream drawn through NewCountedRand is the one NewRand yields. Resume
// determinism rests on this — a checkpointed restart re-seeds the same
// stream and skips ahead.
func TestCountedRandMatchesNewRand(t *testing.T) {
	const seed = 42
	want := NewRand(seed)
	got, src := NewCountedRand(seed)
	for i := 0; i < 5000; i++ {
		// Mix draw kinds: Intn exercises the rejection loop, Float64 the
		// Int63 path, Uint64 the Source64 fast path.
		switch i % 3 {
		case 0:
			a, b := want.Intn(97), got.Intn(97)
			if a != b {
				t.Fatalf("draw %d: Intn %d != %d", i, b, a)
			}
		case 1:
			a, b := want.Float64(), got.Float64()
			if a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, b, a)
			}
		default:
			a, b := want.Uint64(), got.Uint64()
			if a != b {
				t.Fatalf("draw %d: Uint64 %d != %d", i, b, a)
			}
		}
	}
	if src.Draws() == 0 {
		t.Fatal("no draws counted")
	}
}

// TestCountedRandSkipReplays proves the checkpoint/restore protocol: record
// Draws() after a prefix, then re-seed and Skip that many — the suffix
// streams must be identical.
func TestCountedRandSkipReplays(t *testing.T) {
	const seed = 7
	orig, origSrc := NewCountedRand(seed)
	for i := 0; i < 1234; i++ {
		orig.Intn(31 + i%17)
	}
	mark := origSrc.Draws()

	replay, replaySrc := NewCountedRand(seed)
	replaySrc.Skip(mark)
	if replaySrc.Draws() != mark {
		t.Fatalf("Draws after Skip = %d, want %d", replaySrc.Draws(), mark)
	}
	for i := 0; i < 2000; i++ {
		a, b := orig.Intn(53), replay.Intn(53)
		if a != b {
			t.Fatalf("post-skip draw %d: %d != %d", i, b, a)
		}
	}
}

// TestCountingSourceSeedResets checks Seed rewinds both the stream and the
// draw counter.
func TestCountingSourceSeedResets(t *testing.T) {
	r, src := NewCountedRand(3)
	first := r.Uint64()
	r.Uint64()
	src.Seed(3)
	if src.Draws() != 0 {
		t.Fatalf("Draws after Seed = %d, want 0", src.Draws())
	}
	if again := r.Uint64(); again != first {
		t.Fatalf("stream not rewound: %d != %d", again, first)
	}
}
