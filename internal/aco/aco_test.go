package aco

import (
	"math"
	"testing"
)

func TestSelectWeightedDistribution(t *testing.T) {
	r := NewRand(1)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, len(weights))
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[SelectWeighted(r, weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight option selected %d times", counts[2])
	}
	// Expected shares 0.1, 0.3, 0, 0.6 within 2% absolute.
	want := []float64{0.1, 0.3, 0, 0.6}
	for i, w := range want {
		got := float64(counts[i]) / trials
		if math.Abs(got-w) > 0.02 {
			t.Errorf("option %d share %.3f, want %.3f", i, got, w)
		}
	}
}

func TestSelectWeightedNegativeTreatedZero(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 1000; i++ {
		if got := SelectWeighted(r, []float64{-5, 1}); got != 1 {
			t.Fatalf("selected negative-weight option")
		}
	}
}

func TestSelectWeightedZeroMassUniform(t *testing.T) {
	r := NewRand(3)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[SelectWeighted(r, []float64{0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Errorf("option %d drawn %d/30000, want ≈10000", i, c)
		}
	}
}

func TestSelectWeightedPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty weights")
		}
	}()
	SelectWeighted(NewRand(1), nil)
}

func TestNormalizePreservesRatios(t *testing.T) {
	w := []float64{2, 6}
	Normalize(w, 100)
	if math.Abs(w[0]-25) > 1e-9 || math.Abs(w[1]-75) > 1e-9 {
		t.Fatalf("Normalize = %v, want [25 75]", w)
	}
}

func TestNormalizeFloorsNonPositive(t *testing.T) {
	w := []float64{0, -3, 10}
	Normalize(w, 100)
	if w[0] <= 0 || w[1] <= 0 {
		t.Fatalf("Normalize left non-positive entries: %v", w)
	}
	sum := w[0] + w[1] + w[2]
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestMaxShare(t *testing.T) {
	share, idx := MaxShare([]float64{1, 1, 8})
	if idx != 2 || math.Abs(share-0.8) > 1e-9 {
		t.Fatalf("MaxShare = %v,%d", share, idx)
	}
	if share, _ := MaxShare([]float64{0, 0}); share != 0 {
		t.Fatalf("zero-mass share = %v", share)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}
