// Package aco supplies the ant-colony-optimization primitives shared by the
// ISE exploration algorithms: deterministic seeded randomness, roulette-wheel
// selection over non-negative weights, and weight normalization. The
// problem-specific pheromone (trail) update and merit functions live with the
// algorithms that define them.
package aco

import "math/rand"

// NewRand returns a deterministic generator for the given seed. Exploration
// is a randomized heuristic; a fixed seed makes every run reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SelectWeighted draws an index with probability proportional to weights[i].
// Negative weights are treated as zero. If the total mass is zero, the draw
// is uniform. It panics on an empty slice.
func SelectWeighted(r *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		panic("aco: SelectWeighted on empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Normalize rescales weights in place so they sum to total, preserving
// ratios. Non-positive entries are first clamped to a tiny floor so that no
// option's probability ever reaches exactly zero (the paper keeps every
// implementation option selectable; see §4.3 case 3 discussion).
func Normalize(weights []float64, total float64) {
	const floor = 1e-9
	sum := 0.0
	for i, w := range weights {
		if w < floor {
			weights[i] = floor
		}
		sum += weights[i]
	}
	if sum <= 0 {
		return
	}
	scale := total / sum
	for i := range weights {
		weights[i] *= scale
	}
}

// MaxShare returns the largest single-element share of the (non-negative)
// weight mass — the "selected probability" used for the P_END convergence
// test — and the index achieving it.
func MaxShare(weights []float64) (share float64, idx int) {
	sum := 0.0
	best, bi := 0.0, 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		sum += w
		if w > best {
			best, bi = w, i
		}
	}
	if sum <= 0 {
		return 0, 0
	}
	return best / sum, bi
}
